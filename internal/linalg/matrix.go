package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d → %d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Gemm computes C = alpha·A·B + beta·C. Shapes must conform:
// A is m×k, B is k×n, C is m×n. The inner loops are ordered i-k-j for
// streaming access, the standard cache-friendly form for row-major data.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: Gemm shape mismatch %dx%d · %dx%d → %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for k := 0; k < a.Cols; k++ {
			aik := alpha * a.At(i, k)
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// GemmFlops reports the flop count of a Gemm call with these shapes
// (2·m·n·k for the multiply-accumulate core).
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// Cholesky factorises a symmetric positive-definite matrix in place into
// its lower-triangular factor L (upper triangle is zeroed) and returns an
// error if the matrix is not positive definite.
func Cholesky(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
		for i := 0; i < j; i++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// CholeskySolve solves L·Lᵀ·x = b given the factor from Cholesky,
// overwriting x with the solution (x and b may alias).
func CholeskySolve(l *Matrix, b, x []float64) {
	n := l.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: CholeskySolve length mismatch")
	}
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// TensorApply3D applies the 1D operator D (n×n) along the given axis of a
// cube field u of extent n³, writing into out: the tensor-product
// contraction at the heart of spectral-element operators (Nekbone's local
// gradient). axis 0 is the fastest-varying index.
func TensorApply3D(d *Matrix, u, out []float64, n int, axis int) {
	if d.Rows != n || d.Cols != n {
		panic("linalg: TensorApply3D operator shape mismatch")
	}
	if len(u) != n*n*n || len(out) != n*n*n {
		panic("linalg: TensorApply3D field length mismatch")
	}
	idx := func(i, j, k int) int { return i + n*(j+n*k) }
	switch axis {
	case 0:
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				base := idx(0, j, k)
				for i := 0; i < n; i++ {
					var s float64
					drow := d.Data[i*n : (i+1)*n]
					for l, dv := range drow {
						s += dv * u[base+l]
					}
					out[base+i] = s
				}
			}
		}
	case 1:
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var s float64
					drow := d.Data[j*n : (j+1)*n]
					for l, dv := range drow {
						s += dv * u[idx(i, l, k)]
					}
					out[idx(i, j, k)] = s
				}
			}
		}
	case 2:
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				for k := 0; k < n; k++ {
					var s float64
					drow := d.Data[k*n : (k+1)*n]
					for l, dv := range drow {
						s += dv * u[idx(i, j, l)]
					}
					out[idx(i, j, k)] = s
				}
			}
		}
	default:
		panic(fmt.Sprintf("linalg: TensorApply3D invalid axis %d", axis))
	}
}

// TensorApply3DFlops reports the flop count of one TensorApply3D call:
// n³ output points each needing n multiply-adds.
func TensorApply3DFlops(n int) float64 {
	nn := float64(n)
	return 2 * nn * nn * nn * nn
}
