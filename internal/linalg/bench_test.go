package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

func randMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkDot(b *testing.B) {
	n := 1 << 16
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i], y[i] = float64(i%13), float64(i%7)
	}
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkAxpy(b *testing.B) {
	n := 1 << 16
	x := make([]float64, n)
	y := make([]float64, n)
	b.SetBytes(int64(24 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1.0001, x, y)
	}
}

func BenchmarkGemm(b *testing.B) {
	// 16³ matches Nekbone's element operators; 128 shows blocking-free
	// larger behaviour.
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := randMatrix(n, n, 1)
			bb := randMatrix(n, n, 2)
			c := NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm(1, a, bb, 0, c)
			}
			b.ReportMetric(GemmFlops(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkTensorApply3D(b *testing.B) {
	// Order 16: the Nekbone configuration.
	n := 16
	d := randMatrix(n, n, 3)
	u := make([]float64, n*n*n)
	out := make([]float64, n*n*n)
	for i := range u {
		u[i] = float64(i % 9)
	}
	for axis := 0; axis < 3; axis++ {
		axis := axis
		b.Run(fmt.Sprintf("axis=%d", axis), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				TensorApply3D(d, u, out, n, axis)
			}
			b.ReportMetric(TensorApply3DFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkCholesky(b *testing.B) {
	n := 64
	base := randMatrix(n, n, 4)
	spd := NewMatrix(n, n)
	Gemm(1, base.T(), base, 0, spd)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := spd.Clone()
		if err := Cholesky(m); err != nil {
			b.Fatal(err)
		}
	}
}
