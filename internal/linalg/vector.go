// Package linalg provides the dense linear-algebra building blocks used by
// the benchmark kernels: BLAS-1 vector operations, small dense matrices
// with GEMM, tensor-product contractions for spectral-element operators,
// and factorisations for small systems.
//
// These are real numerical routines — the benchmarks execute them and
// validate results — independent of the performance model, which meters
// their operation counts separately.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Waxpby computes w = a*x + b*y element-wise; w may alias x or y.
func Waxpby(a float64, x []float64, b float64, y, w []float64) {
	if len(x) != len(y) || len(x) != len(w) {
		panic("linalg: Waxpby length mismatch")
	}
	for i := range w {
		w[i] = a*x[i] + b*y[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst (equal lengths required).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("linalg: Copy length mismatch")
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// MaxAbs returns the infinity norm of x (0 for empty input).
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AbsDiffMax returns the infinity norm of x - y.
func AbsDiffMax(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: AbsDiffMax length mismatch")
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}
