package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	t.Parallel()
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if Dot(nil, nil) != 0 {
		t.Error("empty dot should be 0")
	}
}

func TestDotMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	t.Parallel()
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestAxpyWaxpbyScale(t *testing.T) {
	t.Parallel()
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	w := make([]float64, 3)
	Waxpby(2, []float64{1, 2, 3}, -1, []float64{1, 1, 1}, w)
	want = []float64{1, 3, 5}
	for i := range w {
		if w[i] != want[i] {
			t.Errorf("Waxpby[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	Scale(0.5, w)
	if w[2] != 2.5 {
		t.Errorf("Scale result %v", w)
	}
}

func TestCopyFillMax(t *testing.T) {
	t.Parallel()
	dst := make([]float64, 3)
	Copy(dst, []float64{1, -5, 2})
	if dst[1] != -5 {
		t.Error("Copy failed")
	}
	if MaxAbs(dst) != 5 {
		t.Errorf("MaxAbs = %v", MaxAbs(dst))
	}
	Fill(dst, 7)
	if dst[0] != 7 || dst[2] != 7 {
		t.Error("Fill failed")
	}
	if AbsDiffMax([]float64{1, 2}, []float64{1, 5}) != 3 {
		t.Error("AbsDiffMax failed")
	}
}

func TestMatrixBasics(t *testing.T) {
	t.Parallel()
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Error("Set/At failed")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Error("Clone aliases data")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 42 {
		t.Error("transpose wrong")
	}
}

func TestMulVec(t *testing.T) {
	t.Parallel()
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{2, 3, 4}, {5, 5, 5}, {1, 7, 2}, {16, 16, 16}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		c := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		want := c.Clone()
		alpha, beta := 1.5, -0.5
		// Naive reference.
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := beta * want.At(i, j)
				for l := 0; l < k; l++ {
					s += alpha * a.At(i, l) * b.At(l, j)
				}
				want.Set(i, j, s)
			}
		}
		Gemm(alpha, a, b, beta, c)
		for i := range c.Data {
			if !almostEq(c.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("Gemm(%v) mismatch at %d: %v vs %v", dims, i, c.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Gemm(1, NewMatrix(2, 3), NewMatrix(2, 3), 0, NewMatrix(2, 3))
}

func TestGemmFlops(t *testing.T) {
	t.Parallel()
	if GemmFlops(2, 3, 4) != 48 {
		t.Errorf("GemmFlops = %v", GemmFlops(2, 3, 4))
	}
}

func TestCholeskySolve(t *testing.T) {
	t.Parallel()
	// SPD matrix A = Bᵀ·B + n·I.
	rng := rand.New(rand.NewSource(2))
	n := 8
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	Gemm(1, b.T(), b, 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	orig := a.Clone()

	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	orig.MulVec(xTrue, rhs)

	if err := Cholesky(a); err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	x := make([]float64, n)
	CholeskySolve(a, rhs, x)
	if d := AbsDiffMax(x, xTrue); d > 1e-9 {
		t.Errorf("solve error %v", d)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	t.Parallel()
	a := NewMatrix(2, 2)
	a.Set(0, 0, -1)
	if err := Cholesky(a); err == nil {
		t.Error("negative-definite matrix should fail")
	}
	if err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix should fail")
	}
}

// naiveTensor3D is the index-by-index reference for TensorApply3D.
func naiveTensor3D(d *Matrix, u []float64, n, axis int) []float64 {
	out := make([]float64, n*n*n)
	idx := func(i, j, k int) int { return i + n*(j+n*k) }
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s float64
				for l := 0; l < n; l++ {
					switch axis {
					case 0:
						s += d.At(i, l) * u[idx(l, j, k)]
					case 1:
						s += d.At(j, l) * u[idx(i, l, k)]
					case 2:
						s += d.At(k, l) * u[idx(i, j, l)]
					}
				}
				out[idx(i, j, k)] = s
			}
		}
	}
	return out
}

func TestTensorApply3D(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	n := 5
	d := NewMatrix(n, n)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	u := make([]float64, n*n*n)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	out := make([]float64, n*n*n)
	for axis := 0; axis < 3; axis++ {
		TensorApply3D(d, u, out, n, axis)
		want := naiveTensor3D(d, u, n, axis)
		if diff := AbsDiffMax(out, want); diff > 1e-12 {
			t.Errorf("axis %d mismatch %v", axis, diff)
		}
	}
}

func TestTensorApply3DInvalidAxis(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := 2
	TensorApply3D(NewMatrix(n, n), make([]float64, 8), make([]float64, 8), n, 3)
}

func TestTensorApply3DFlops(t *testing.T) {
	t.Parallel()
	if TensorApply3DFlops(4) != 2*4*4*4*4 {
		t.Error("flop count wrong")
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotProperties(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		x, y := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		if Dot(x, y) != Dot(y, x) {
			return false
		}
		x2 := make([]float64, n)
		for i := range x2 {
			x2[i] = 2 * x[i]
		}
		a, b := Dot(x2, y), 2*Dot(x, y)
		scale := math.Max(math.Abs(a), 1)
		return math.Abs(a-b) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky reconstructs the original matrix (L·Lᵀ = A).
func TestCholeskyReconstructionProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := NewMatrix(n, n)
		Gemm(1, b.T(), b, 0, a)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		orig := a.Clone()
		if err := Cholesky(a); err != nil {
			return false
		}
		recon := NewMatrix(n, n)
		Gemm(1, a, a.T(), 0, recon)
		return AbsDiffMax(recon.Data, orig.Data) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
