package micro

import (
	"math"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/spec"
)

// TestCalibrateEmbeddedSelfConsistent is the acceptance gate for the
// calibration protocol: the embedded specs' anchors were generated from
// the committed model, so refitting must reproduce the committed
// efficiency tables to well within 1%.
func TestCalibrateEmbeddedSelfConsistent(t *testing.T) {
	t.Parallel()
	for _, m := range spec.Embedded() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			cal, err := Calibrate(m)
			if err != nil {
				t.Fatal(err)
			}
			if got := cal.MaxScaleError(); got > 0.01 {
				t.Errorf("fitted scales (mem %.6f, comp %.6f) deviate %.4f from 1, want < 1%%",
					cal.MemoryScale, cal.ComputeScale, got)
			}
			committed := arch.Efficiencies(arch.ID(m.Name()))
			for class, want := range committed {
				got := cal.Eff[class]
				if relErr(got.Compute, want.Compute) > 0.01 || relErr(got.Memory, want.Memory) > 0.01 {
					t.Errorf("%s: refit %v differs from committed %v by > 1%%", class, got, want)
				}
			}
			if cal.LatencyModel <= 0 {
				t.Error("latency consistency probe returned zero")
			}
			if cal.LatencyAnchor <= 0 {
				t.Error("embedded specs declare a latency anchor")
			}
			// The fabric is declared data, not fitted: the modelled
			// latency must already sit on the declared anchor.
			if relErr(cal.LatencyModel.Seconds(), cal.LatencyAnchor.Seconds()) > 0.01 {
				t.Errorf("latency model %v vs anchor %v differ > 1%%", cal.LatencyModel, cal.LatencyAnchor)
			}
		})
	}
}

// TestCalibrateDetectsDriftedAnchors declares a what-if machine whose
// anchors disagree with its efficiency table; the fit must move the
// scales off 1 in the right direction.
func TestCalibrateDetectsDriftedAnchors(t *testing.T) {
	t.Parallel()
	base, ok := spec.Get("A64FX")
	if !ok {
		t.Fatal("A64FX not registered")
	}
	s := base.Spec // copy
	s.Name = "A64FX-drift-test"
	anchors := *s.Anchors
	// Claim 20% less triad bandwidth and 10% more peak than the table
	// predicts.
	anchors.TriadBandwidth = spec.FormatByteRate(base.Anchors.TriadBandwidth * 0.8)
	anchors.PeakFlops = spec.FormatFlopRate(base.Anchors.PeakFlops * 1.1)
	s.Anchors = &anchors
	m, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	if cal.MemoryScale > 0.85 || cal.MemoryScale < 0.7 {
		t.Errorf("MemoryScale = %.4f, want ≈0.8 for a 20%% slower triad anchor", cal.MemoryScale)
	}
	if cal.ComputeScale < 1.05 || cal.ComputeScale > 1.2 {
		t.Errorf("ComputeScale = %.4f, want ≈1.1 for a 10%% faster peak anchor", cal.ComputeScale)
	}
	if cal.MaxScaleError() < 0.01 {
		t.Error("drifted anchors must not pass the 1% gate")
	}
	// Refit never exceeds an efficiency of 1.
	for class, e := range cal.Eff {
		if e.Compute > 1 || e.Memory > 1 {
			t.Errorf("%s: refit efficiency %v out of range", class, e)
		}
	}
}

// TestPeakFlopsIsComputeBound pins the peak kernel's result to the
// calibrated LargeGEMM compute ceiling.
func TestPeakFlopsIsComputeBound(t *testing.T) {
	t.Parallel()
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		got, err := PeakFlops(sys)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		ceiling := float64(sys.Node.PeakFlops) * arch.Efficiencies(id)[perfmodel.LargeGEMM].Compute
		if float64(got) > ceiling {
			t.Errorf("%s: peak kernel %.1f GF/s above calibrated ceiling %.1f", id, float64(got)/1e9, ceiling/1e9)
		}
		if float64(got) < 0.9*ceiling {
			t.Errorf("%s: peak kernel %.1f GF/s not compute bound (ceiling %.1f)", id, float64(got)/1e9, ceiling/1e9)
		}
	}
}

// TestTriadExpectationBandsDiffer: the whole point of the calibrated
// band is that it is per-system.
func TestTriadExpectationBandsDiffer(t *testing.T) {
	t.Parallel()
	loA, hiA := TriadExpectation(arch.MustGet(arch.A64FX))
	loR, hiR := TriadExpectation(arch.MustGet(arch.ARCHER))
	if loA <= 0 || loR <= 0 || hiA <= loA || hiR <= loR {
		t.Fatalf("degenerate bands: A64FX [%v %v], ARCHER [%v %v]", loA, hiA, loR, hiR)
	}
	fracA := float64(hiA) / float64(arch.MustGet(arch.A64FX).Node.PeakBandwidth())
	fracR := float64(hiR) / float64(arch.MustGet(arch.ARCHER).Node.PeakBandwidth())
	if math.Abs(fracA-fracR) < 0.05 {
		t.Errorf("bands should reflect per-system efficiency: A64FX %.3f vs ARCHER %.3f of peak", fracA, fracR)
	}
}

func TestCalibrateValidation(t *testing.T) {
	t.Parallel()
	if _, err := Calibrate(nil); err == nil {
		t.Error("nil machine should fail")
	}
	if _, err := PeakFlops(nil); err == nil {
		t.Error("nil system should fail")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
