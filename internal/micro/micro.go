// Package micro provides the microbenchmarks that validate the machine
// and network models against their specification inputs: a STREAM-triad
// bandwidth sweep (the paper cites >240 GB/s per ThunderX2 node and
// ~256 GB/s per A64FX CMG), an OSU-style ping-pong latency/bandwidth
// probe, and collective-cost sweeps. These are the "is the simulator
// wired correctly" instruments — if STREAM does not reproduce the
// Table I-derived bandwidths, nothing downstream can be trusted.
package micro

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// StreamResult is one point of a STREAM-triad core sweep.
type StreamResult struct {
	Cores int
	// Bandwidth is the achieved triad bandwidth.
	Bandwidth units.ByteRate
}

// StreamTriad sweeps a STREAM-triad (a[i] = b[i] + s·c[i]) over core
// counts on one node of the system, returning the achieved bandwidth at
// each count. Array length follows STREAM rules (much larger than
// cache).
func StreamTriad(sys *arch.System, coreCounts []int) ([]StreamResult, error) {
	return StreamTriadWith(sys, nil, nil, coreCounts)
}

// StreamTriadWith is StreamTriad with an explicit calibration table in
// place of the system's registered one (nil = registered). The
// calibration fit iterates candidate tables through this.
func StreamTriadWith(sys *arch.System, eff map[perfmodel.KernelClass]perfmodel.Efficiency, gains map[perfmodel.KernelClass]float64, coreCounts []int) ([]StreamResult, error) {
	if sys == nil {
		return nil, fmt.Errorf("micro: system is required")
	}
	const elems = 1 << 25 // 33.5M doubles per array, ≫ any L2
	var out []StreamResult
	for _, c := range coreCounts {
		if c < 1 || c > sys.CoresPerNode() {
			return nil, fmt.Errorf("micro: %d cores outside 1..%d", c, sys.CoresPerNode())
		}
		// One rank per core, each owning an equal slice of the arrays.
		per := float64(elems) / float64(c)
		w := perfmodel.WorkProfile{
			Class: perfmodel.VectorOp,
			Flops: units.Flops(2 * per),
			Bytes: units.Bytes(3 * 8 * per), // two loads + one store
			Calls: 1,
		}
		model := sys.PerRankModelWith(eff, gains, c, 1)
		job := simmpi.JobConfig{
			Procs: c, Nodes: 1, ThreadsPerRank: 1,
			RankModel: func(int) *perfmodel.CostModel { return model },
		}
		const reps = 10
		rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
			for i := 0; i < reps; i++ {
				r.Compute(w)
			}
			r.Barrier()
			return nil
		})
		if err != nil {
			return nil, err
		}
		total := float64(3*8*elems) * reps
		out = append(out, StreamResult{
			Cores:     c,
			Bandwidth: units.ByteRate(units.Rate(total, rep.Makespan)),
		})
	}
	return out, nil
}

// PingPongResult is one message-size point of the latency/bandwidth probe.
type PingPongResult struct {
	Bytes units.Bytes
	// HalfRoundTrip is the one-way time (half the ping-pong round trip).
	HalfRoundTrip units.Duration
	// Bandwidth is the achieved one-way bandwidth.
	Bandwidth units.ByteRate
}

// PingPong measures one-way latency and bandwidth between two ranks on
// different nodes of the system, across message sizes — the OSU
// latency/bandwidth pair.
func PingPong(sys *arch.System, sizes []units.Bytes) ([]PingPongResult, error) {
	if sys == nil {
		return nil, fmt.Errorf("micro: system is required")
	}
	model := sys.PerRankModel(1, 1)
	var out []PingPongResult
	for _, size := range sizes {
		size := size
		const reps = 50
		job := simmpi.JobConfig{
			Procs: 2, Nodes: 2, ThreadsPerRank: 1,
			RankModel: func(int) *perfmodel.CostModel { return model },
			Fabric:    sys.NewFabric(2),
		}
		rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
			for i := 0; i < reps; i++ {
				if r.ID() == 0 {
					r.Send(1, 5, nil, size)
					r.Recv(1, 6)
				} else {
					r.Recv(0, 5)
					r.Send(0, 6, nil, size)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		oneWay := units.DurationFromSeconds(rep.Makespan.Seconds() / (2 * reps))
		res := PingPongResult{Bytes: size, HalfRoundTrip: oneWay}
		if s := oneWay.Seconds(); s > 0 {
			res.Bandwidth = units.ByteRate(float64(size) / s)
		}
		out = append(out, res)
	}
	return out, nil
}

// CollectiveResult is one point of an allreduce node sweep.
type CollectiveResult struct {
	Nodes int
	// Time is the per-call allreduce duration.
	Time units.Duration
}

// AllreduceSweep measures an 8-byte allreduce across node counts with
// fully populated nodes — the collective whose scaling underpins every
// CG-type benchmark in the study.
func AllreduceSweep(sys *arch.System, nodeCounts []int) ([]CollectiveResult, error) {
	if sys == nil {
		return nil, fmt.Errorf("micro: system is required")
	}
	var out []CollectiveResult
	for _, nodes := range nodeCounts {
		if nodes < 1 {
			return nil, fmt.Errorf("micro: invalid node count %d", nodes)
		}
		procs := nodes * sys.CoresPerNode()
		model := sys.PerRankModel(sys.CoresPerNode(), 1)
		job := simmpi.JobConfig{
			Procs: procs, Nodes: nodes, ThreadsPerRank: 1,
			RankModel: func(int) *perfmodel.CostModel { return model },
			Fabric:    sys.NewFabric(nodes),
		}
		const reps = 20
		rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
			for i := 0; i < reps; i++ {
				r.AllreduceScalar(1, simmpi.OpSum)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, CollectiveResult{
			Nodes: nodes,
			Time:  units.DurationFromSeconds(rep.Makespan.Seconds() / reps),
		})
	}
	return out, nil
}
