package micro

import (
	"fmt"
	"math"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/spec"
	"a64fxbench/internal/units"
)

// Calibration protocol (DESIGN.md §8): a machine spec declares both a
// per-kernel efficiency table and the anchor measurements it was fitted
// against (full-node STREAM triad, the peak-flops kernel, optionally
// the 8-byte inter-node latency). Calibrate refits the table down to
// two free parameters — a memory-efficiency scale and a compute-
// efficiency scale applied uniformly across kernel classes — so the
// model reproduces the anchors, then reports how far the declared
// table sits from the refit. For a self-consistent spec (anchors
// produced by the committed model, as the embedded five are) both
// scales come back as 1.0 to within float noise.

// PeakFlops runs the peak-flops kernel — one compute-bound large-GEMM
// rank per core, arithmetic intensity high enough that no machine in
// the format's reach is memory bound — and reports the achieved
// node-level flop rate.
func PeakFlops(sys *arch.System) (units.FlopRate, error) {
	return PeakFlopsWith(sys, nil, nil)
}

// PeakFlopsWith is PeakFlops with an explicit calibration table.
func PeakFlopsWith(sys *arch.System, eff map[perfmodel.KernelClass]perfmodel.Efficiency, gains map[perfmodel.KernelClass]float64) (units.FlopRate, error) {
	if sys == nil {
		return 0, fmt.Errorf("micro: system is required")
	}
	c := sys.CoresPerNode()
	const (
		flopsPerRank = 2e9
		reps         = 5
		// 1000 flops/byte: far beyond every machine balance point.
		intensity = 1000
	)
	w := perfmodel.WorkProfile{
		Class: perfmodel.LargeGEMM,
		Flops: units.Flops(flopsPerRank),
		Bytes: units.Bytes(flopsPerRank / intensity),
		Calls: 1,
	}
	model := sys.PerRankModelWith(eff, gains, c, 1)
	job := simmpi.JobConfig{
		Procs: c, Nodes: 1, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
	}
	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		for i := 0; i < reps; i++ {
			r.Compute(w)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := flopsPerRank * float64(c) * reps
	return units.FlopRate(units.Rate(total, rep.Makespan)), nil
}

// TriadExpectation returns the plausible [lo, hi] band for the
// full-node STREAM triad on a system: hi is the calibrated VectorOp
// memory efficiency times the placement bandwidth of all cores, and lo
// backs off 10% for per-call overhead and the closing barrier. This is
// the per-system tolerance the plausibility tests use instead of a
// hard-coded fraction of peak.
func TriadExpectation(sys *arch.System) (lo, hi units.ByteRate) {
	em := 0.60 // perfmodel's fallback memory efficiency
	if e, ok := arch.Efficiencies(sys.ID)[perfmodel.VectorOp]; ok && e.Memory > 0 {
		em = e.Memory
	}
	hi = units.ByteRate(float64(sys.Node.PlacementBandwidth(sys.Node.Cores)) * em)
	lo = units.ByteRate(0.9 * float64(hi))
	return lo, hi
}

// Calibration is the result of refitting a machine's efficiency table
// against its declared anchors.
type Calibration struct {
	// Machine is the spec's name.
	Machine string
	// MemoryScale and ComputeScale are the two fitted free parameters:
	// uniform multipliers on the declared Memory and Compute columns
	// that make the model reproduce the anchors (1.0 = the declared
	// table already does).
	MemoryScale  float64
	ComputeScale float64
	// TriadModel/PeakModel are the model's microbenchmark results under
	// the refit table; the *Anchor fields are the spec's declarations.
	TriadModel  units.ByteRate
	TriadAnchor units.ByteRate
	PeakModel   units.FlopRate
	PeakAnchor  units.FlopRate
	// LatencyModel is the modelled 8-byte inter-node one-way latency —
	// a consistency check on the fabric section, not a fitted value
	// (the fabric is declared data). LatencyAnchor is zero when the
	// spec declares no latency anchor.
	LatencyModel  units.Duration
	LatencyAnchor units.Duration
	// Eff is the refit efficiency table (declared × fitted scales,
	// clamped to (0, 1]).
	Eff map[perfmodel.KernelClass]perfmodel.Efficiency
}

// MaxScaleError reports how far the fitted scales sit from 1 — the
// number `machines calibrate` compares against its tolerance.
func (c *Calibration) MaxScaleError() float64 {
	m := math.Abs(c.MemoryScale - 1)
	if v := math.Abs(c.ComputeScale - 1); v > m {
		m = v
	}
	return m
}

// scaleTable multiplies the compute and memory columns of a table,
// clamping to 1.
func scaleTable(base map[perfmodel.KernelClass]perfmodel.Efficiency, cs, ms float64) map[perfmodel.KernelClass]perfmodel.Efficiency {
	out := make(map[perfmodel.KernelClass]perfmodel.Efficiency, len(base))
	for k, e := range base {
		out[k] = perfmodel.Efficiency{
			Compute: math.Min(e.Compute*cs, 1),
			Memory:  math.Min(e.Memory*ms, 1),
		}
	}
	return out
}

// fitScale finds the multiplier s such that measure(s) ≈ target, by
// fixed-point iteration (measure is monotone and near-linear in s until
// the clamp or a roofline crossover bends it). maxScale caps s so no
// scaled efficiency exceeds 1.
func fitScale(target, maxScale float64, measure func(s float64) (float64, error)) (float64, error) {
	s := 1.0
	for i := 0; i < 16; i++ {
		got, err := measure(s)
		if err != nil {
			return 0, err
		}
		if got <= 0 {
			return 0, fmt.Errorf("micro: calibration kernel returned a non-positive rate")
		}
		ratio := target / got
		if math.Abs(ratio-1) < 1e-9 {
			break
		}
		s *= ratio
		if s > maxScale {
			s = maxScale
		}
	}
	return s, nil
}

// Calibrate registers the machine (idempotently) and refits its
// efficiency table against the declared anchors.
func Calibrate(m *spec.Machine) (*Calibration, error) {
	if m == nil {
		return nil, fmt.Errorf("micro: machine is required")
	}
	sys, err := arch.RegisterMachine(m)
	if err != nil {
		return nil, err
	}
	cores := []int{m.CoresPerNode()}

	maxMem, maxComp := math.Inf(1), math.Inf(1)
	for _, e := range m.Efficiency {
		if cap := 1 / e.Memory; cap < maxMem {
			maxMem = cap
		}
		if cap := 1 / e.Compute; cap < maxComp {
			maxComp = cap
		}
	}

	ms, err := fitScale(float64(m.Anchors.TriadBandwidth), maxMem, func(s float64) (float64, error) {
		res, err := StreamTriadWith(sys, scaleTable(m.Efficiency, 1, s), m.FastMathGain, cores)
		if err != nil {
			return 0, err
		}
		return float64(res[0].Bandwidth), nil
	})
	if err != nil {
		return nil, err
	}
	cs, err := fitScale(float64(m.Anchors.PeakFlops), maxComp, func(s float64) (float64, error) {
		rate, err := PeakFlopsWith(sys, scaleTable(m.Efficiency, s, 1), m.FastMathGain)
		return float64(rate), err
	})
	if err != nil {
		return nil, err
	}

	cal := &Calibration{
		Machine:       m.Name(),
		MemoryScale:   ms,
		ComputeScale:  cs,
		TriadAnchor:   m.Anchors.TriadBandwidth,
		PeakAnchor:    m.Anchors.PeakFlops,
		LatencyAnchor: m.Anchors.Latency,
		Eff:           scaleTable(m.Efficiency, cs, ms),
	}
	triad, err := StreamTriadWith(sys, cal.Eff, m.FastMathGain, cores)
	if err != nil {
		return nil, err
	}
	cal.TriadModel = triad[0].Bandwidth
	peak, err := PeakFlopsWith(sys, cal.Eff, m.FastMathGain)
	if err != nil {
		return nil, err
	}
	cal.PeakModel = peak
	pp, err := PingPong(sys, []units.Bytes{8})
	if err != nil {
		return nil, err
	}
	cal.LatencyModel = pp[0].HalfRoundTrip
	return cal, nil
}
