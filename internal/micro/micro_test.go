package micro

import (
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/units"
)

func TestStreamTriadReproducesSpecBandwidths(t *testing.T) {
	t.Parallel()
	// Full-node STREAM must land inside the per-system band derived
	// from the calibrated VectorOp memory efficiency — a hard-coded
	// fraction of peak would let low-efficiency systems (A64FX at
	// 0.653) pass on luck and flag high-efficiency ones (ARCHER at
	// 0.96) spuriously.
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		res, err := StreamTriad(sys, []int{sys.CoresPerNode()})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := float64(res[0].Bandwidth)
		peak := float64(sys.Node.PeakBandwidth())
		if got > peak {
			t.Errorf("%s STREAM %.1f GB/s exceeds spec peak %.1f", id, got/1e9, peak/1e9)
		}
		lo, hi := TriadExpectation(sys)
		if got < float64(lo) || got > float64(hi) {
			t.Errorf("%s STREAM %.1f GB/s outside calibrated band [%.1f, %.1f] GB/s",
				id, got/1e9, float64(lo)/1e9, float64(hi)/1e9)
		}
	}
}

func TestStreamPaperCitations(t *testing.T) {
	t.Parallel()
	// §II: ThunderX2 nodes measure >240 GB/s triad... with the
	// VectorOp efficiency our model lands close below spec; check the
	// A64FX:Fulhame ratio instead, which the paper puts near 3.5×.
	a, err := StreamTriad(arch.MustGet(arch.A64FX), []int{48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := StreamTriad(arch.MustGet(arch.Fulhame), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(a[0].Bandwidth) / float64(f[0].Bandwidth)
	if ratio < 2.5 || ratio > 4.5 {
		t.Errorf("A64FX/Fulhame STREAM ratio = %.2f, expected ≈3.4", ratio)
	}
}

func TestStreamSaturationCurve(t *testing.T) {
	t.Parallel()
	// Bandwidth grows with cores and saturates: the last doubling gains
	// less than the first.
	sys := arch.MustGet(arch.A64FX)
	res, err := StreamTriad(sys, []int{1, 2, 4, 8, 16, 32, 48})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		// Once the domains saturate the curve is flat; allow a sliver
		// of barrier/overhead noise but no real decline.
		if float64(res[i].Bandwidth) < 0.99*float64(res[i-1].Bandwidth) {
			t.Errorf("bandwidth fell from %d to %d cores", res[i-1].Cores, res[i].Cores)
		}
	}
	firstGain := float64(res[1].Bandwidth) / float64(res[0].Bandwidth)
	lastGain := float64(res[len(res)-1].Bandwidth) / float64(res[len(res)-2].Bandwidth)
	if lastGain >= firstGain {
		t.Errorf("no saturation: first doubling ×%.2f, last step ×%.2f", firstGain, lastGain)
	}
}

func TestStreamValidation(t *testing.T) {
	t.Parallel()
	if _, err := StreamTriad(nil, []int{1}); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := StreamTriad(arch.MustGet(arch.A64FX), []int{0}); err == nil {
		t.Error("0 cores should fail")
	}
	if _, err := StreamTriad(arch.MustGet(arch.A64FX), []int{100}); err == nil {
		t.Error("too many cores should fail")
	}
}

func TestPingPongLatencyInMPIRange(t *testing.T) {
	t.Parallel()
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		res, err := PingPong(sys, []units.Bytes{0})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lat := res[0].HalfRoundTrip.Seconds()
		// Credible MPI small-message latency: 0.5–5 µs.
		if lat < 0.5e-6 || lat > 5e-6 {
			t.Errorf("%s zero-byte latency %.2f µs outside MPI range", id, lat*1e6)
		}
	}
}

func TestPingPongBandwidthApproachesLink(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.A64FX)
	res, err := PingPong(sys, []units.Bytes{units.MiB, 16 * units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	// Large messages approach the TofuD link bandwidth (6.8 GB/s).
	bw := float64(res[1].Bandwidth)
	if bw < 5e9 || bw > 6.9e9 {
		t.Errorf("16 MiB bandwidth %.2f GB/s, expected ≈6.8", bw/1e9)
	}
	// Bandwidth increases with message size (latency amortised).
	if res[1].Bandwidth <= res[0].Bandwidth {
		t.Error("bandwidth should grow with message size")
	}
}

func TestPingPongTofuBeatsOmniPathLatency(t *testing.T) {
	t.Parallel()
	tofu, err := PingPong(arch.MustGet(arch.A64FX), []units.Bytes{0})
	if err != nil {
		t.Fatal(err)
	}
	opa, err := PingPong(arch.MustGet(arch.NGIO), []units.Bytes{0})
	if err != nil {
		t.Fatal(err)
	}
	if tofu[0].HalfRoundTrip > opa[0].HalfRoundTrip {
		t.Error("TofuD should not have worse small-message latency than OmniPath")
	}
}

func TestAllreduceSweepGrowsWithNodes(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.Fulhame)
	res, err := AllreduceSweep(sys, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Time < res[i-1].Time {
			t.Errorf("allreduce got cheaper from %d to %d nodes", res[i-1].Nodes, res[i].Nodes)
		}
	}
	// Even at 8 nodes an 8-byte allreduce is tens of microseconds, not
	// milliseconds.
	if res[3].Time.Seconds() > 1e-3 {
		t.Errorf("8-node allreduce = %v, implausibly slow", res[3].Time)
	}
}

func TestMicroValidation(t *testing.T) {
	t.Parallel()
	if _, err := PingPong(nil, nil); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := AllreduceSweep(nil, nil); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := AllreduceSweep(arch.MustGet(arch.A64FX), []int{0}); err == nil {
		t.Error("0 nodes should fail")
	}
}
