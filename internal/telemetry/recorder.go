package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Entry is one completed request as the flight recorder retains it:
// identity, outcome, the server-counter snapshot at completion, and the
// full span tree. Entries are immutable once observed.
type Entry struct {
	RequestID string `json:"request_id"`
	// Op is the operation endpoint, e.g. "/v1/sweep".
	Op string `json:"op"`
	// Digest is the normalized request digest ("" when the request
	// failed before decoding).
	Digest string `json:"digest,omitempty"`
	Status int    `json:"status"`
	// Cache is the response-cache outcome: hit, miss, coalesced, or ""
	// for requests that never reached the cache.
	Cache string    `json:"cache,omitempty"`
	Start time.Time `json:"start"`
	// DurationMS is the end-to-end request latency in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Counters snapshots the server's own gauges/counters at the moment
	// the request completed (inflight, queued, cache totals, …).
	Counters map[string]float64 `json:"counters,omitempty"`
	// Spans is the request's span tree.
	Spans *SpanNode `json:"spans,omitempty"`
}

// Label is the entry's one-line identity, used when an entry names a
// track in an external viewer (the Chrome export's process name).
func (e *Entry) Label() string {
	return fmt.Sprintf("%s %s (%d, %.1fms)", e.RequestID, e.Op, e.Status, e.DurationMS)
}

// WriteText renders the entry (header line + span tree) for the
// flight recorder's text view.
func (e *Entry) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s %s status %d cache %s %.3fms digest %.12s\n",
		e.RequestID, e.Op, e.Status, orDash(e.Cache), e.DurationMS, e.Digest); err != nil {
		return err
	}
	return WriteTree(w, e.Spans)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Recorder is the slow-request flight recorder: a bounded in-memory
// store retaining the N slowest requests seen so far plus a ring of the
// most recent errored requests (status ≥ 400, client hangups included).
// Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	slowCap int
	errCap  int
	slow    []*Entry // unordered; the minimum is evicted on overflow
	errored []*Entry // ring, errNext is the next overwrite slot
	errNext int
	total   uint64
}

// NewRecorder builds a recorder keeping the slowCap slowest and the
// errCap most recent errored requests (≤ 0 selects the defaults 32 and
// 64).
func NewRecorder(slowCap, errCap int) *Recorder {
	if slowCap <= 0 {
		slowCap = 32
	}
	if errCap <= 0 {
		errCap = 64
	}
	return &Recorder{slowCap: slowCap, errCap: errCap}
}

// Observe records one completed request. Errored requests (status ≥
// 400) always enter the errored ring; successful ones compete for the
// slowest set.
func (r *Recorder) Observe(e *Entry) {
	if r == nil || e == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if e.Status >= 400 {
		if len(r.errored) < r.errCap {
			r.errored = append(r.errored, e)
		} else {
			r.errored[r.errNext] = e
			r.errNext = (r.errNext + 1) % r.errCap
		}
		return
	}
	if len(r.slow) < r.slowCap {
		r.slow = append(r.slow, e)
		return
	}
	min := 0
	for i, s := range r.slow {
		if s.DurationMS < r.slow[min].DurationMS {
			min = i
		}
	}
	if e.DurationMS > r.slow[min].DurationMS {
		r.slow[min] = e
	}
}

// Snapshot is the recorder's exported state: the retained slow requests
// (slowest first) and the errored ring (most recent first).
type Snapshot struct {
	// Total counts every request observed since start, retained or not.
	Total   uint64   `json:"total_observed"`
	Slowest []*Entry `json:"slowest"`
	Errored []*Entry `json:"errored"`
}

// Snapshot returns a stable copy of the recorder's current state.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Total: r.total, Slowest: make([]*Entry, len(r.slow))}
	copy(snap.Slowest, r.slow)
	sort.SliceStable(snap.Slowest, func(i, j int) bool {
		return snap.Slowest[i].DurationMS > snap.Slowest[j].DurationMS
	})
	snap.Errored = r.orderedErrored()
	return snap
}

// orderedErrored returns the errored ring newest-first; the caller
// holds the lock.
func (r *Recorder) orderedErrored() []*Entry {
	out := make([]*Entry, 0, len(r.errored))
	if len(r.errored) < r.errCap {
		for i := len(r.errored) - 1; i >= 0; i-- {
			out = append(out, r.errored[i])
		}
		return out
	}
	for i := 1; i <= r.errCap; i++ {
		out = append(out, r.errored[(r.errNext-i+r.errCap)%r.errCap])
	}
	return out
}
