package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic wall clock for span tests.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d int64) {
	c.mu.Lock()
	c.ns += d
	c.mu.Unlock()
}

func TestSpanTreeShape(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{ns: 1000}
	tr := newTraceAt("req-1", "request", clk.now)
	if tr.RequestID() != "req-1" {
		t.Fatalf("RequestID = %q", tr.RequestID())
	}

	clk.advance(10)
	decode := tr.Root().Child("decode")
	clk.advance(5)
	decode.End()

	flight := tr.Root().Child("singleflight-wait")
	exec := flight.Child("engine-execute")
	exec.SetAttr("id", "table3")
	clk.advance(100)
	exec.End()
	flight.End()
	tr.Finish()

	n := tr.Tree()
	if n.Name != "request" || n.DurationNS != 115 {
		t.Fatalf("root = %q dur %d, want request/115", n.Name, n.DurationNS)
	}
	if len(n.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(n.Children))
	}
	if n.Children[0].Name != "decode" || n.Children[0].StartNS != 10 || n.Children[0].DurationNS != 5 {
		t.Fatalf("decode node = %+v", n.Children[0])
	}
	ex := n.Find("engine-execute")
	if ex == nil || ex.DurationNS != 100 || ex.Attrs["id"] != "table3" {
		t.Fatalf("engine-execute node = %+v", ex)
	}
	// Ending twice keeps the first end.
	clk.advance(50)
	exec.End()
	if got := tr.Tree().Find("engine-execute").DurationNS; got != 100 {
		t.Fatalf("double End changed duration to %d", got)
	}
}

func TestNilSafety(t *testing.T) {
	t.Parallel()
	var s *Span
	s.End()
	s.SetAttr("k", 1)
	s.Fail(context.Canceled)
	s.Record("x", ClockVirtual, 0, 10)
	if c := s.Child("child"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	var tr *Trace
	tr.Finish()
	if tr.Tree() != nil || tr.Root() != nil || tr.RequestID() != "" {
		t.Fatal("nil trace accessors must be zero")
	}

	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace must be a no-op")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}
}

func TestContextPropagation(t *testing.T) {
	t.Parallel()
	tr := NewTrace("req-2", "request")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	ctx, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	b.End()
	a.End()
	tr.Finish()
	n := tr.Tree()
	if n.Find("a") == nil || n.Find("a").Children[0].Name != "b" {
		t.Fatalf("b must nest under a: %+v", n)
	}
}

func TestVirtualSpans(t *testing.T) {
	t.Parallel()
	tr := NewTrace("req-3", "request")
	tr.Root().Record("virtual-makespan", ClockVirtual, 0, 2_500_000,
		Attr{Key: "ranks", Value: 48})
	tr.Finish()
	n := tr.Tree().Find("virtual-makespan")
	if n == nil || n.Clock != "virtual" || n.DurationNS != 2_500_000 || n.Attrs["ranks"] != 48 {
		t.Fatalf("virtual span = %+v", n)
	}
	// Virtual children are excluded from wall-stage maps.
	if st := tr.Tree().Stages(); len(st) != 0 {
		t.Fatalf("Stages included virtual spans: %v", st)
	}
}

func TestStages(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{}
	tr := newTraceAt("req-4", "request", clk.now)
	for _, stage := range []string{"decode", "cache-lookup", "singleflight-wait"} {
		s := tr.Root().Child(stage)
		clk.advance(1000)
		s.End()
	}
	// A duplicate stage name sums.
	s := tr.Root().Child("decode")
	clk.advance(500)
	s.End()
	tr.Finish()
	st := tr.Tree().Stages()
	if st["decode"] != 1500*time.Nanosecond {
		t.Fatalf("decode stage = %v, want 1500ns", st["decode"])
	}
	var sum time.Duration
	for _, d := range st {
		sum += d
	}
	if root := time.Duration(tr.Tree().DurationNS); sum != root {
		t.Fatalf("stages sum %v != root %v", sum, root)
	}
}

func TestSpanCap(t *testing.T) {
	t.Parallel()
	tr := NewTrace("req-5", "request")
	for i := 0; i < maxSpans+10; i++ {
		tr.Root().Record("s", ClockWall, 0, 1)
	}
	tr.Finish()
	n := tr.Tree()
	if len(n.Children) != maxSpans-1 {
		t.Fatalf("retained %d children, want %d", len(n.Children), maxSpans-1)
	}
	if n.Attrs["dropped_spans"] != 11 {
		t.Fatalf("dropped_spans = %v, want 11", n.Attrs["dropped_spans"])
	}
}

func TestConcurrentSpans(t *testing.T) {
	t.Parallel()
	tr := NewTrace("req-6", "request")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := tr.Root().Child("worker")
				s.SetAttr("j", j)
				s.End()
				_ = tr.Tree() // concurrent snapshot while spans mutate
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Tree().Children); got != 16*50 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestUnfinishedSpanSnapshot(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{}
	tr := newTraceAt("req-7", "request", clk.now)
	s := tr.Root().Child("stuck")
	clk.advance(5000)
	n := tr.Tree().Find("stuck")
	if !n.Unfinished || n.DurationNS != 5000 {
		t.Fatalf("unfinished snapshot = %+v", n)
	}
	s.End()
}

func TestWriteTree(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{}
	tr := newTraceAt("req-8", "request", clk.now)
	a := tr.Root().Child("decode")
	clk.advance(2_000_000)
	a.End()
	b := tr.Root().Child("singleflight-wait")
	c := b.Child("engine-execute")
	c.Fail(context.DeadlineExceeded)
	clk.advance(1_000_000)
	c.End()
	b.End()
	tr.Finish()

	var sb strings.Builder
	if err := WriteTree(&sb, tr.Tree()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"request", "├─ decode", "└─ singleflight-wait",
		"└─ engine-execute", "error: context deadline exceeded", "2.000ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}
