package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteTree renders a span tree as indented text, one span per line:
//
//	request                          12.41ms
//	├─ decode                         0.03ms
//	├─ cache-lookup                   0.01ms
//	└─ singleflight-wait             12.30ms
//	   └─ engine-execute             11.90ms
//
// Virtual-clock spans print their virtual duration tagged "virtual".
// Deterministic for a given tree.
func WriteTree(w io.Writer, n *SpanNode) error {
	return writeTree(w, n, "", "")
}

func writeTree(w io.Writer, n *SpanNode, prefix, childPrefix string) error {
	if n == nil {
		return nil
	}
	tag := ""
	if n.Clock == string(ClockVirtual) {
		tag = " virtual"
	}
	if n.Unfinished {
		tag += " (unfinished)"
	}
	if n.Error != "" {
		tag += " error: " + n.Error
	}
	attrs := ""
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			attrs += fmt.Sprintf(" %s=%v", k, n.Attrs[k])
		}
	}
	if _, err := fmt.Fprintf(w, "%s%-*s %10.3fms%s%s\n",
		prefix, 44-len(prefix), n.Name,
		time.Duration(n.DurationNS).Seconds()*1000, tag, attrs); err != nil {
		return err
	}
	for i, c := range n.Children {
		connector, next := "├─ ", "│  "
		if i == len(n.Children)-1 {
			connector, next = "└─ ", "   "
		}
		if err := writeTree(w, c, childPrefix+connector, childPrefix+next); err != nil {
			return err
		}
	}
	return nil
}
