// Package telemetry is the zero-dependency request-span layer of the
// serving stack: a span is a named, timed piece of work with a parent,
// attributes and a status, and a trace is the tree of spans one request
// produced. The serve daemon opens a root span per HTTP request (tagged
// with its X-Request-ID), the request path hangs child spans off it
// (decode, cache-lookup, singleflight-wait, admission, engine-execute,
// render), the sweep engine adds one span per artifact, and simmpi adds
// spans for each simulated job's setup/run/replay passes — so a slow
// request decomposes into exactly the stages the paper's methodology
// attributes time to.
//
// Spans are carried through context.Context and every API is nil-safe:
// with no trace in the context, StartSpan returns a nil *Span whose
// methods are no-ops, so instrumented code costs one context lookup when
// telemetry is off and never changes simulated results either way.
//
// Two clocks coexist. Serve-side spans run on the wall clock (times are
// nanoseconds since the trace root started). Spans recorded inside the
// simulator may instead carry virtual time (Clock = "virtual"), so a
// span tree can show both how long the host worked and how long the
// simulated machine ran.
package telemetry

import (
	"context"
	"sync"
	"time"
)

// Clock labels the timebase of a span.
type Clock string

// The span timebases.
const (
	// ClockWall is host wall-clock time, relative to the trace root's
	// start. The zero Clock value means wall.
	ClockWall Clock = "wall"
	// ClockVirtual is simulated virtual time (vclock nanoseconds).
	ClockVirtual Clock = "virtual"
)

// maxSpans bounds one trace's span count so a runaway sweep (or an
// adversarial request) cannot grow a trace without limit; children past
// the cap are counted in the root's "dropped_spans" attribute instead
// of being retained.
const maxSpans = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Trace owns one request's span tree. All methods are safe for
// concurrent use: the sweep engine ends artifact spans from worker
// goroutines while the serving layer reads the tree.
type Trace struct {
	mu        sync.Mutex
	requestID string
	root      *Span
	spans     int
	dropped   int
	now       func() int64 // wall nanoseconds; injectable in tests
	base      int64        // wall nanoseconds at root start
}

// NewTrace starts a trace: the root span begins now. requestID tags the
// trace (the serve daemon uses the X-Request-ID value).
func NewTrace(requestID, rootName string) *Trace {
	return newTraceAt(requestID, rootName, func() int64 { return time.Now().UnixNano() })
}

// newTraceAt is NewTrace with an injectable clock (tests).
func newTraceAt(requestID, rootName string, now func() int64) *Trace {
	t := &Trace{requestID: requestID, now: now}
	t.base = now()
	t.root = &Span{tr: t, name: rootName, clock: ClockWall, start: 0}
	t.spans = 1
	return t
}

// RequestID returns the trace's request identity. Nil-safe.
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.requestID
}

// Root returns the root span. Nil-safe (returns nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (and with it the trace's end-to-end
// duration). Child spans still running keep recording — the tree is
// re-snapshot on every Tree call. Nil-safe.
func (t *Trace) Finish() { t.Root().End() }

// Span is one node of a trace: a named, timed piece of work. The zero
// of use is the nil *Span — every method is a no-op on it — so
// instrumented code never branches on "is telemetry on".
type Span struct {
	tr       *Trace
	name     string
	clock    Clock
	start    int64 // ns in the span's clock (wall: relative to trace base)
	end      int64 // 0 while running
	ended    bool
	attrs    []Attr
	errMsg   string
	children []*Span
}

// newChild allocates a child under the trace lock; returns nil when the
// trace is at its span cap.
func (t *Trace) newChild(parent *Span, name string, clock Clock, start, end int64, ended bool) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= maxSpans {
		t.dropped++
		return nil
	}
	t.spans++
	c := &Span{tr: t, name: name, clock: clock, start: start, end: end, ended: ended}
	parent.children = append(parent.children, c)
	return c
}

// Child opens a wall-clock child span starting now. Nil-safe: a nil
// receiver returns nil, so span trees prune themselves when telemetry
// is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newChild(s, name, ClockWall, s.tr.now()-s.tr.base, 0, false)
}

// Record attaches an already-completed child span with explicit times
// in the given clock — how the simulator reports virtual-time phases
// (start and dur are virtual nanoseconds) without telemetry owning the
// virtual clock. Nil-safe.
func (s *Span) Record(name string, clock Clock, start, dur int64, attrs ...Attr) {
	if s == nil {
		return
	}
	c := s.tr.newChild(s, name, clock, start, start+dur, true)
	if c != nil && len(attrs) > 0 {
		s.tr.mu.Lock()
		c.attrs = append(c.attrs, attrs...)
		s.tr.mu.Unlock()
	}
}

// End closes the span at the current wall clock. Ending twice keeps the
// first end time. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.end = s.tr.now() - s.tr.base
	}
}

// SetAttr annotates the span. Setting a key again overwrites the
// previous value. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Fail marks the span errored with the error's message. A nil error or
// receiver is a no-op.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.errMsg = err.Error()
	s.tr.mu.Unlock()
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying span as the active parent
// for StartSpan. A nil span yields ctx unchanged.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFrom returns the context's active span, or nil when the request
// is not being traced.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a
// context with the child active. With no span in ctx (telemetry off)
// it returns ctx and a nil span — the no-op fast path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return ContextWithSpan(ctx, child), child
}

// SpanNode is the exported, immutable snapshot of one span — what the
// flight recorder retains, /v1/debug/slow serves, and the renderers
// consume.
type SpanNode struct {
	Name string `json:"name"`
	// Clock is omitted for wall-clock spans and "virtual" for spans on
	// the simulated clock.
	Clock string `json:"clock,omitempty"`
	// StartNS is nanoseconds since the trace root started (wall spans)
	// or virtual nanoseconds (virtual spans).
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span length in its clock. A span still running
	// when the tree was snapshot reports the duration so far and
	// Unfinished true.
	DurationNS int64          `json:"duration_ns"`
	Unfinished bool           `json:"unfinished,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Error      string         `json:"error,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

// Tree snapshots the trace's span tree. Safe to call while spans are
// still being recorded (e.g. a singleflight leader detached from a
// hung-up client); spans added later appear in later snapshots.
// Nil-safe (returns nil).
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now() - t.base
	root := t.root.snapshot(now)
	if t.dropped > 0 {
		if root.Attrs == nil {
			root.Attrs = map[string]any{}
		}
		root.Attrs["dropped_spans"] = t.dropped
	}
	return root
}

// snapshot converts the span subtree; the caller holds the trace lock.
func (s *Span) snapshot(now int64) *SpanNode {
	n := &SpanNode{Name: s.name, StartNS: s.start, Error: s.errMsg}
	if s.clock == ClockVirtual {
		n.Clock = string(ClockVirtual)
	}
	if s.ended {
		n.DurationNS = s.end - s.start
	} else {
		n.Unfinished = true
		if d := now - s.start; s.clock != ClockVirtual && d > 0 {
			n.DurationNS = d
		}
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.snapshot(now))
	}
	return n
}

// Stages flattens the node's direct wall-clock children into a
// stage-name → duration map — the per-stage breakdown the request log
// and the stage histograms consume. Duplicate stage names sum.
func (n *SpanNode) Stages() map[string]time.Duration {
	if n == nil || len(n.Children) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(n.Children))
	for _, c := range n.Children {
		if c.Clock == string(ClockVirtual) {
			continue
		}
		out[c.Name] += time.Duration(c.DurationNS)
	}
	return out
}

// Find returns the first descendant (depth-first, self included) with
// the given name, or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}
