package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

func entry(id string, status int, ms float64) *Entry {
	return &Entry{RequestID: id, Op: "/v1/run", Status: status, DurationMS: ms}
}

func TestRecorderKeepsSlowest(t *testing.T) {
	t.Parallel()
	r := NewRecorder(3, 4)
	for i := 1; i <= 10; i++ {
		r.Observe(entry(fmt.Sprintf("r%d", i), 200, float64(i)))
	}
	snap := r.Snapshot()
	if snap.Total != 10 {
		t.Fatalf("Total = %d, want 10", snap.Total)
	}
	if len(snap.Slowest) != 3 {
		t.Fatalf("retained %d slow entries, want 3", len(snap.Slowest))
	}
	want := []float64{10, 9, 8}
	for i, e := range snap.Slowest {
		if e.DurationMS != want[i] {
			t.Fatalf("slowest[%d] = %.0fms, want %.0f", i, e.DurationMS, want[i])
		}
	}
	// A fast request does not displace a slower one.
	r.Observe(entry("fast", 200, 0.1))
	if got := len(r.Snapshot().Slowest); got != 3 {
		t.Fatalf("fast request changed the slow set size to %d", got)
	}
	for _, e := range r.Snapshot().Slowest {
		if e.RequestID == "fast" {
			t.Fatal("fast request displaced a slower one")
		}
	}
}

func TestRecorderErroredRing(t *testing.T) {
	t.Parallel()
	r := NewRecorder(2, 3)
	for i := 1; i <= 5; i++ {
		r.Observe(entry(fmt.Sprintf("e%d", i), 500, 1))
	}
	snap := r.Snapshot()
	if len(snap.Errored) != 3 {
		t.Fatalf("errored ring holds %d, want 3", len(snap.Errored))
	}
	// Newest first: e5, e4, e3.
	for i, want := range []string{"e5", "e4", "e3"} {
		if snap.Errored[i].RequestID != want {
			t.Fatalf("errored[%d] = %s, want %s", i, snap.Errored[i].RequestID, want)
		}
	}
	if len(snap.Slowest) != 0 {
		t.Fatal("errored requests must not enter the slow set")
	}
}

func TestRecorderPartialErroredRing(t *testing.T) {
	t.Parallel()
	r := NewRecorder(2, 8)
	r.Observe(entry("a", 400, 1))
	r.Observe(entry("b", 499, 1))
	snap := r.Snapshot()
	if len(snap.Errored) != 2 || snap.Errored[0].RequestID != "b" || snap.Errored[1].RequestID != "a" {
		t.Fatalf("partial ring order = %+v", snap.Errored)
	}
}

func TestRecorderDefaultsAndNil(t *testing.T) {
	t.Parallel()
	r := NewRecorder(0, 0)
	if r.slowCap != 32 || r.errCap != 64 {
		t.Fatalf("defaults = %d/%d, want 32/64", r.slowCap, r.errCap)
	}
	r.Observe(nil)
	var nilRec *Recorder
	nilRec.Observe(entry("x", 200, 1)) // must not panic
	if got := r.Snapshot().Total; got != 0 {
		t.Fatalf("nil entry counted: %d", got)
	}
}

func TestEntryWriteText(t *testing.T) {
	t.Parallel()
	tr := NewTrace("req-9", "request")
	tr.Root().Child("decode").End()
	tr.Finish()
	e := &Entry{RequestID: "req-9", Op: "/v1/run", Status: 200, Cache: "miss",
		DurationMS: 1.5, Digest: "abcdef0123456789", Spans: tr.Tree()}
	var sb strings.Builder
	if err := e.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"req-9", "/v1/run", "status 200", "cache miss", "abcdef012345", "decode"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text entry missing %q:\n%s", want, out)
		}
	}
}
