package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{KiB, "1.00 KiB"},
		{3 * MiB / 2, "1.50 MiB"},
		{8 * GiB, "8.00 GiB"},
		{2 * TiB, "2.00 TiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFlopsString(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   Flops
		want string
	}{
		{500, "500 FLOP"},
		{2 * KFlop, "2.00 KFLOP"},
		{38.26 * GFlop, "38.26 GFLOP"},
		{1.5 * TFlop, "1.50 TFLOP"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Flops(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestFlopRateGFLOPs(t *testing.T) {
	t.Parallel()
	r := FlopRate(38.26e9)
	if got := r.GFLOPs(); math.Abs(got-38.26) > 1e-9 {
		t.Errorf("GFLOPs() = %v, want 38.26", got)
	}
	if s := r.String(); !strings.Contains(s, "GFLOP/s") {
		t.Errorf("String() = %q, want GFLOP/s suffix", s)
	}
}

func TestByteRateString(t *testing.T) {
	t.Parallel()
	if s := (256 * GBPerSec).String(); s != "256.00 GB/s" {
		t.Errorf("got %q", s)
	}
	if s := (1.024 * TBPerSec).String(); s != "1.02 TB/s" {
		t.Errorf("got %q", s)
	}
}

func TestDurationFromSeconds(t *testing.T) {
	t.Parallel()
	d := DurationFromSeconds(1.5)
	if d != Duration(1500*time.Millisecond) {
		t.Errorf("got %v", d)
	}
	if DurationFromSeconds(-1) != 0 {
		t.Error("negative seconds should clamp to zero")
	}
	if DurationFromSeconds(math.NaN()) != 0 {
		t.Error("NaN seconds should clamp to zero")
	}
	if DurationFromSeconds(1e300) != Duration(math.MaxInt64) {
		t.Error("huge seconds should saturate")
	}
}

func TestTimeFor(t *testing.T) {
	t.Parallel()
	// 10 GFLOP at 2 GFLOP/s takes 5 s.
	d := TimeFor(10e9, 2e9)
	if got := d.Seconds(); math.Abs(got-5) > 1e-9 {
		t.Errorf("TimeFor = %v s, want 5", got)
	}
	if TimeFor(100, 0) != 0 {
		t.Error("zero rate must give zero duration")
	}
	if TimeFor(0, 100) != 0 {
		t.Error("zero amount must give zero duration")
	}
}

func TestRate(t *testing.T) {
	t.Parallel()
	if got := Rate(10e9, DurationFromSeconds(2)); math.Abs(got-5e9) > 1 {
		t.Errorf("Rate = %v, want 5e9", got)
	}
	if Rate(10, 0) != 0 {
		t.Error("zero duration must give zero rate")
	}
}

// Property: TimeFor and Rate are inverses for positive inputs within
// nanosecond quantisation error.
func TestTimeForRateRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(amountRaw, rateRaw uint32) bool {
		amount := float64(amountRaw%1e6) + 1
		rate := float64(rateRaw%1e6) + 1
		d := TimeFor(amount, rate)
		back := Rate(amount, d)
		// Nanosecond rounding means we tolerate relative error ~1e-6.
		return math.Abs(back-rate)/rate < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: durations from seconds are monotone.
func TestDurationMonotone(t *testing.T) {
	t.Parallel()
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return DurationFromSeconds(x) <= DurationFromSeconds(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
