// Package units provides strongly typed quantities used throughout the
// simulator: byte counts, floating-point operation counts, rates and
// virtual durations, together with parsing and formatting helpers.
//
// Keeping these as distinct types (rather than bare float64/int64) catches a
// whole class of unit-confusion bugs at compile time — e.g. adding a byte
// count to a flop count, or passing GB/s where B/s is expected.
package units

import (
	"fmt"
	"math"
	"time"
)

// Bytes is a number of bytes. It is an integer count; memory-traffic
// estimates that are fractional should be rounded by the caller.
type Bytes int64

// Common byte sizes.
const (
	B   Bytes = 1
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// String renders the byte count using binary prefixes with two decimals.
func (b Bytes) String() string {
	switch {
	case b >= TiB:
		return fmt.Sprintf("%.2f TiB", float64(b)/float64(TiB))
	case b >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// Flops is a count of double-precision floating point operations.
type Flops float64

// Common flop magnitudes.
const (
	Flop  Flops = 1
	KFlop Flops = 1e3
	MFlop Flops = 1e6
	GFlop Flops = 1e9
	TFlop Flops = 1e12
)

// String renders the flop count with decimal prefixes.
func (f Flops) String() string {
	switch {
	case f >= TFlop:
		return fmt.Sprintf("%.2f TFLOP", float64(f/TFlop))
	case f >= GFlop:
		return fmt.Sprintf("%.2f GFLOP", float64(f/GFlop))
	case f >= MFlop:
		return fmt.Sprintf("%.2f MFLOP", float64(f/MFlop))
	case f >= KFlop:
		return fmt.Sprintf("%.2f KFLOP", float64(f/KFlop))
	default:
		return fmt.Sprintf("%.0f FLOP", float64(f))
	}
}

// FlopRate is a floating-point throughput in FLOP per second.
type FlopRate float64

// Common rates.
const (
	FlopPerSec  FlopRate = 1
	GFlopPerSec FlopRate = 1e9
	TFlopPerSec FlopRate = 1e12
)

// GFLOPs reports the rate in GFLOP/s as a plain float64, the unit used by
// the paper's tables.
func (r FlopRate) GFLOPs() float64 { return float64(r) / 1e9 }

// String renders the rate in the most natural decimal prefix.
func (r FlopRate) String() string {
	switch {
	case r >= TFlopPerSec:
		return fmt.Sprintf("%.2f TFLOP/s", float64(r/TFlopPerSec))
	case r >= GFlopPerSec:
		return fmt.Sprintf("%.2f GFLOP/s", float64(r/GFlopPerSec))
	default:
		return fmt.Sprintf("%.2f MFLOP/s", float64(r)/1e6)
	}
}

// ByteRate is a memory or network bandwidth in bytes per second.
type ByteRate float64

// Common bandwidth magnitudes (decimal, as vendors quote them).
const (
	BytePerSec ByteRate = 1
	MBPerSec   ByteRate = 1e6
	GBPerSec   ByteRate = 1e9
	TBPerSec   ByteRate = 1e12
)

// String renders the bandwidth with decimal prefixes.
func (r ByteRate) String() string {
	switch {
	case r >= TBPerSec:
		return fmt.Sprintf("%.2f TB/s", float64(r/TBPerSec))
	case r >= GBPerSec:
		return fmt.Sprintf("%.2f GB/s", float64(r/GBPerSec))
	default:
		return fmt.Sprintf("%.2f MB/s", float64(r/MBPerSec))
	}
}

// Duration is a simulated (virtual) duration. It deliberately reuses
// time.Duration's representation so the standard formatting applies, but a
// distinct named type keeps virtual and wall-clock durations apart in
// signatures.
type Duration time.Duration

// Duration constructors and conversions.
const (
	Nanosecond  Duration = Duration(time.Nanosecond)
	Microsecond Duration = Duration(time.Microsecond)
	Millisecond Duration = Duration(time.Millisecond)
	Second      Duration = Duration(time.Second)
)

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return time.Duration(d).Seconds() }

// String formats the duration via time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationFromSeconds converts a floating-point number of seconds into a
// Duration, saturating rather than overflowing for absurd values.
func DurationFromSeconds(s float64) Duration {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	ns := s * 1e9
	if ns > float64(math.MaxInt64) {
		return Duration(math.MaxInt64)
	}
	return Duration(ns)
}

// TimeFor returns the duration needed to process `amount` units of work at
// `rate` units per second. A non-positive rate yields zero (callers model
// "free" phases that way, e.g. overlapped transfers).
func TimeFor(amount float64, rate float64) Duration {
	if rate <= 0 || amount <= 0 {
		return 0
	}
	return DurationFromSeconds(amount / rate)
}

// Rate returns amount/duration in units per second; zero duration gives 0.
func Rate(amount float64, d Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return amount / s
}
