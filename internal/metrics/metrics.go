// Package metrics is the simulator's virtual performance-monitoring
// unit (PMU): a fixed registry of named hardware-style counters and a
// per-rank accumulator that samples them in virtual time.
//
// Real investigations of the A64FX read memory-boundedness, vector
// quality and network share off hardware counters (LIKWID/ECM-style
// groups); the simulator has the same information available exactly —
// every metered WorkProfile and every message carries its operation
// counts — so the virtual PMU exposes it under stable counter names:
// flops by kernel class, effective L1/L2/DRAM traffic, model-attributed
// stall time (compute / memory / per-call overhead / network / noise),
// point-to-point traffic, and collective time by algorithm.
//
// Everything here is driven by the ranks' virtual clocks and program
// order, never by wall time or goroutine scheduling, so counter values
// and sampled series are bit-deterministic for a given job — the same
// property the trace and golden-artifact layers already guarantee.
package metrics

import (
	"fmt"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// Kind classifies a counter for regression-diff direction rules.
type Kind int

// Counter kinds.
const (
	// Work counters are operation/traffic counts (flops, bytes,
	// messages). They derive from the benchmarks' real arithmetic, so a
	// change is a behavioural change, regardless of direction.
	Work Kind = iota
	// Time counters accumulate virtual time; more is worse.
	Time
	// Rate counters are derived throughputs (snapshot-only; the PMU
	// itself never accumulates rates); less is worse.
	Rate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Work:
		return "work"
	case Time:
		return "time"
	case Rate:
		return "rate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"work"`:
		*k = Work
	case `"time"`:
		*k = Time
	case `"rate"`:
		*k = Rate
	default:
		return fmt.Errorf("metrics: unknown counter kind %s", b)
	}
	return nil
}

// ID indexes a counter in the registry (and in every value vector).
type ID int

// Def describes one registered counter.
type Def struct {
	// Name is the stable dotted counter name, e.g. "flops.spmv" or
	// "stall.mem.ns".
	Name string
	// Unit is the counter's unit ("flops", "bytes", "ns", "msgs").
	Unit string
	// Kind drives the regression-diff direction rule.
	Kind Kind
	// Desc is a one-line human description.
	Desc string
}

// Collective identifies one collective algorithm for time attribution.
type Collective int

// Collectives instrumented by the runtime.
const (
	CollBarrier Collective = iota
	CollAllreduce
	CollBcast
	CollReduce
	CollAllgather
	CollAlltoall
	CollReduceScatter
	CollExScan
	numCollectives
)

// String names the collective.
func (c Collective) String() string {
	switch c {
	case CollBarrier:
		return "barrier"
	case CollAllreduce:
		return "allreduce"
	case CollBcast:
		return "bcast"
	case CollReduce:
		return "reduce"
	case CollAllgather:
		return "allgather"
	case CollAlltoall:
		return "alltoall"
	case CollReduceScatter:
		return "reduce-scatter"
	case CollExScan:
		return "exscan"
	default:
		return fmt.Sprintf("collective(%d)", int(c))
	}
}

// NumCollectives reports how many collective algorithms are
// instrumented (Collective values range over [0, NumCollectives())).
func NumCollectives() Collective { return numCollectives }

// The registry. Built once at init in a fixed order, so IDs, names and
// value-vector layouts are identical in every process.
var (
	defs   []Def
	byName = map[string]ID{}

	flopsByClass []ID
	collByOp     []ID

	// Effective memory traffic by hierarchy level. DRAM bytes are the
	// metered WorkProfile bytes; L1/L2 are the cost model's per-class
	// amplification estimates (perfmodel.CacheAmplification).
	MemL1   ID
	MemL2   ID
	MemDRAM ID

	// TimeFlops is the roofline flop term of compute phases; StallMem
	// the excess of the memory term over it (zero for compute-bound
	// phases); StallCall the per-invocation overhead term. The three sum
	// to the phase time exactly.
	TimeFlops ID
	StallMem  ID
	StallCall ID
	// StallNet is receive-side blocked time, StallNoise injected OS
	// noise, NetInject the sender-CPU injection overhead, TimeOther
	// fixed Elapse() advances (setup, modelled I/O).
	StallNet   ID
	StallNoise ID
	NetInject  ID
	TimeOther  ID

	// Point-to-point traffic (collective internals included).
	SentMsgs  ID
	SentBytes ID
	RecvMsgs  ID
	RecvBytes ID

	// ECM-mode phase attribution: the raw per-level transfer phases of
	// the ECM model (register↔L1, L1↔L2, memory) and the overlap credit
	// its composition rule subtracts from their sum. All zero under the
	// roofline model, so roofline snapshots are unchanged by their
	// existence. Time = TimeFlops + ECML1 + ECML2 + ECMMem + StallCall
	// − ECMHidden for every ECM compute phase.
	ECML1     ID
	ECML2     ID
	ECMMem    ID
	ECMHidden ID
)

func register(name, unit string, kind Kind, desc string) ID {
	if _, dup := byName[name]; dup {
		panic("metrics: duplicate counter " + name)
	}
	id := ID(len(defs))
	defs = append(defs, Def{Name: name, Unit: unit, Kind: kind, Desc: desc})
	byName[name] = id
	return id
}

func init() {
	classes := perfmodel.KernelClasses()
	flopsByClass = make([]ID, len(classes))
	for _, c := range classes {
		flopsByClass[c] = register("flops."+c.String(), "flops", Work,
			"double-precision operations retired by "+c.String()+" kernels")
	}
	MemDRAM = register("mem.dram.bytes", "bytes", Work, "effective main-memory (DRAM/HBM) traffic")
	MemL2 = register("mem.l2.bytes", "bytes", Work, "modelled L2 traffic (per-class amplification of DRAM bytes)")
	MemL1 = register("mem.l1.bytes", "bytes", Work, "modelled L1 traffic (per-class bytes-per-flop estimate)")
	TimeFlops = register("time.flops.ns", "ns", Time, "roofline flop term of compute phases")
	StallMem = register("stall.mem.ns", "ns", Time, "memory-bound excess over the flop term")
	StallCall = register("stall.call.ns", "ns", Time, "per-kernel-invocation overhead")
	StallNet = register("stall.net.ns", "ns", Time, "receive-side blocked time")
	StallNoise = register("stall.noise.ns", "ns", Time, "injected OS-noise delay")
	NetInject = register("net.inject.ns", "ns", Time, "sender-CPU message injection overhead")
	TimeOther = register("time.other.ns", "ns", Time, "fixed Elapse() advances (setup, modelled I/O)")
	SentMsgs = register("net.sent.msgs", "msgs", Work, "point-to-point messages sent")
	SentBytes = register("net.sent.bytes", "bytes", Work, "point-to-point bytes sent")
	RecvMsgs = register("net.recv.msgs", "msgs", Work, "point-to-point messages received")
	RecvBytes = register("net.recv.bytes", "bytes", Work, "point-to-point bytes received")
	collByOp = make([]ID, numCollectives)
	for c := Collective(0); c < numCollectives; c++ {
		collByOp[c] = register("coll."+c.String()+".ns", "ns", Time,
			"virtual time inside "+c.String()+" collectives (outermost only)")
	}
	ECML1 = register("ecm.l1.ns", "ns", Time, "ECM register↔L1 transfer phase of compute phases")
	ECML2 = register("ecm.l2.ns", "ns", Time, "ECM L1↔L2 transfer phase of compute phases")
	ECMMem = register("ecm.mem.ns", "ns", Time, "ECM memory transfer phase of compute phases")
	ECMHidden = register("ecm.hidden.ns", "ns", Time, "ECM overlap credit subtracted from the phase sum")
}

// NumCounters reports the registry size (the length of value vectors).
func NumCounters() int { return len(defs) }

// Counters returns a copy of the full registry in ID order.
func Counters() []Def {
	out := make([]Def, len(defs))
	copy(out, defs)
	return out
}

// Lookup resolves a counter name.
func Lookup(name string) (ID, bool) {
	id, ok := byName[name]
	return id, ok
}

// Def returns the counter's definition.
func (id ID) Def() Def { return defs[id] }

// String returns the counter's name.
func (id ID) String() string { return defs[id].Name }

// FlopsFor returns the flop counter of a kernel class.
func FlopsFor(c perfmodel.KernelClass) ID { return flopsByClass[c] }

// CollTime returns the time counter of a collective algorithm.
func CollTime(c Collective) ID { return collByOp[c] }

// Config enables and tunes counter collection for a job.
type Config struct {
	// Period is the virtual-time sampling period of the per-rank series;
	// ≤ 0 means the 100µs default. Samples land on multiples of the
	// period of each rank's own virtual clock.
	Period units.Duration
	// MaxSamples bounds each rank's series: when a series would exceed
	// it, the period doubles and existing samples are decimated onto the
	// coarser grid (deterministically — the kept samples are exactly the
	// even multiples). ≤ 0 means the default of 512; the bound keeps
	// memory finite regardless of job length.
	MaxSamples int
}

// Defaults for Config zero values.
const (
	DefaultPeriod     = 100 * units.Microsecond
	DefaultMaxSamples = 512
)

// Sanitized resolves defaults: a zero Config means the default period
// and sample bound.
func (c Config) Sanitized() Config {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = DefaultMaxSamples
	}
	return c
}

// Sample is one point of a sampled counter series: the cumulative
// counter vector when the owning clock first reached (or passed) At.
type Sample struct {
	At     units.Duration `json:"at_ns"`
	Values []float64      `json:"values"`
}

// PeerStat is one rank's traffic towards a single peer rank.
type PeerStat struct {
	Peer  int         `json:"peer"`
	Msgs  int64       `json:"msgs"`
	Bytes units.Bytes `json:"bytes"`
}

// RankPMU accumulates one rank's counters. The owning rank drives it
// from its body goroutine; it is not safe for concurrent use — exactly
// like the rank itself.
type RankPMU struct {
	vals       []float64
	period     units.Duration
	maxSamples int
	next       units.Duration
	samples    []Sample
	peerMsgs   []int64
	peerBytes  []units.Bytes
}

// NewRankPMU creates a PMU for one rank of a job with `ranks` ranks.
func NewRankPMU(cfg Config, ranks int) *RankPMU {
	cfg = cfg.Sanitized()
	return &RankPMU{
		vals:       make([]float64, len(defs)),
		period:     cfg.Period,
		maxSamples: cfg.MaxSamples,
		next:       cfg.Period,
		peerMsgs:   make([]int64, ranks),
		peerBytes:  make([]units.Bytes, ranks),
	}
}

// Add accumulates a counter delta.
func (p *RankPMU) Add(id ID, v float64) { p.vals[id] += v }

// AddTime accumulates a virtual-time delta in nanoseconds.
func (p *RankPMU) AddTime(id ID, d units.Duration) { p.vals[id] += float64(d) }

// AddPeer accumulates one sent message towards a peer rank.
func (p *RankPMU) AddPeer(peer int, bytes units.Bytes) {
	p.peerMsgs[peer]++
	p.peerBytes[peer] += bytes
}

// Observe samples the counters at every period boundary the owning
// clock has crossed since the previous call. Hooks call it after
// applying an operation's deltas with the operation's completion time,
// so a sample at k·Period holds the cumulative counters at the moment
// the rank's clock first reached or passed that boundary.
func (p *RankPMU) Observe(now units.Duration) {
	for p.next <= now {
		vals := make([]float64, len(p.vals))
		copy(vals, p.vals)
		p.samples = append(p.samples, Sample{At: p.next, Values: vals})
		p.next += p.period
		if len(p.samples) > p.maxSamples {
			p.decimate()
		}
	}
}

// decimate doubles the period and keeps only samples on the coarser
// grid. Purely a function of the sample times — deterministic.
func (p *RankPMU) decimate() {
	p.period *= 2
	keep := p.samples[:0]
	for _, s := range p.samples {
		if s.At%p.period == 0 {
			keep = append(keep, s)
		}
	}
	// Drop the tail references so decimated samples can be collected.
	for i := len(keep); i < len(p.samples); i++ {
		p.samples[i] = Sample{}
	}
	p.samples = keep
	if rem := p.next % p.period; rem != 0 {
		p.next += p.period - rem
	}
}

// Counters freezes the PMU into the rank's final accounting.
func (p *RankPMU) Counters(rank int) RankCounters {
	rc := RankCounters{
		Rank:    rank,
		Period:  p.period,
		Values:  append([]float64(nil), p.vals...),
		Samples: p.samples,
	}
	for peer := range p.peerMsgs {
		if p.peerMsgs[peer] != 0 || p.peerBytes[peer] != 0 {
			rc.Peers = append(rc.Peers, PeerStat{
				Peer: peer, Msgs: p.peerMsgs[peer], Bytes: p.peerBytes[peer],
			})
		}
	}
	return rc
}

// RankCounters is one rank's final counter accounting: cumulative
// values (indexed by ID), the sampled series, and per-peer traffic.
type RankCounters struct {
	Rank int `json:"rank"`
	// Period is the rank's final sampling period (decimation may have
	// coarsened it from the configured one).
	Period units.Duration `json:"period_ns"`
	// Values holds the final cumulative counters, indexed by ID.
	Values []float64 `json:"values"`
	// Samples is the virtual-time series, ascending in At.
	Samples []Sample `json:"samples,omitempty"`
	// Peers lists per-peer sent traffic, ascending in Peer.
	Peers []PeerStat `json:"peers,omitempty"`
}

// Value returns one final counter value.
func (rc *RankCounters) Value(id ID) float64 { return rc.Values[id] }

// JobCounters aggregates every rank's counters for one job.
type JobCounters struct {
	Ranks []RankCounters `json:"ranks"`
}

// Totals sums the final counter vectors across ranks.
func (jc *JobCounters) Totals() []float64 {
	out := make([]float64, len(defs))
	for _, rc := range jc.Ranks {
		for i, v := range rc.Values {
			out[i] += v
		}
	}
	return out
}

// Total sums one counter across ranks.
func (jc *JobCounters) Total(id ID) float64 {
	var v float64
	for _, rc := range jc.Ranks {
		v += rc.Values[id]
	}
	return v
}

// AggregateSeries merges the per-rank series into one job-wide series on
// the coarsest period any rank settled on (every finer period divides
// it, since decimation only ever doubles). Each point sums, over ranks,
// the rank's cumulative counters at that time — the final values once a
// rank's series is exhausted. The result depends only on the per-rank
// series, so it is deterministic.
func (jc *JobCounters) AggregateSeries() (units.Duration, []Sample) {
	var period, last units.Duration
	for _, rc := range jc.Ranks {
		if rc.Period > period {
			period = rc.Period
		}
		if n := len(rc.Samples); n > 0 && rc.Samples[n-1].At > last {
			last = rc.Samples[n-1].At
		}
	}
	if period <= 0 || last <= 0 {
		return period, nil
	}
	n := int(last / period)
	out := make([]Sample, 0, n)
	idx := make([]int, len(jc.Ranks)) // per-rank cursor into Samples
	for k := 1; k <= n; k++ {
		t := units.Duration(k) * period
		vals := make([]float64, len(defs))
		for ri := range jc.Ranks {
			rc := &jc.Ranks[ri]
			for idx[ri] < len(rc.Samples) && rc.Samples[idx[ri]].At <= t {
				idx[ri]++
			}
			var src []float64
			switch {
			case idx[ri] == 0:
				// Before the rank's first sample (or a rank whose job was
				// shorter than one period): contributes zero.
				continue
			case idx[ri] == len(rc.Samples) && t > rc.Samples[idx[ri]-1].At:
				// Past the rank's series: its counters are frozen at the
				// final cumulative values.
				src = rc.Values
			default:
				src = rc.Samples[idx[ri]-1].Values
			}
			for i, v := range src {
				vals[i] += v
			}
		}
		out = append(out, Sample{At: t, Values: vals})
	}
	return period, out
}
