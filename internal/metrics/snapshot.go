package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// SnapshotSchema versions the snapshot file format.
const SnapshotSchema = 1

// SnapshotEntry is one named metric of a snapshot.
type SnapshotEntry struct {
	// Key is the fully-qualified metric key, e.g.
	// "table3/000 hpcg p=4/ctr/flops.spmv".
	Key   string  `json:"key"`
	Value float64 `json:"value"`
	// Kind selects the diff direction rule for this metric.
	Kind Kind `json:"kind"`
	// Unit is informational ("flops", "bytes", "ns", "gflop/s", …).
	Unit string `json:"unit,omitempty"`
}

// Snapshot is a canonical set of metrics from one run — the unit of the
// regression sentinel. Its JSON form is byte-deterministic: entries are
// sorted by key and floats use Go's shortest round-trip encoding.
type Snapshot struct {
	Schema int `json:"schema"`
	// Meta carries run identification (options, suite), not compared by
	// Diff.
	Meta    map[string]string `json:"meta,omitempty"`
	Entries []SnapshotEntry   `json:"entries"`
}

// NewSnapshot creates an empty snapshot with the current schema.
func NewSnapshot(meta map[string]string) *Snapshot {
	return &Snapshot{Schema: SnapshotSchema, Meta: meta}
}

// Add appends one metric.
func (s *Snapshot) Add(key string, value float64, kind Kind, unit string) {
	s.Entries = append(s.Entries, SnapshotEntry{Key: key, Value: value, Kind: kind, Unit: unit})
}

// Sort orders entries by key — the canonical order.
func (s *Snapshot) Sort() {
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Key < s.Entries[j].Key })
}

// WriteJSON writes the canonical JSON form: sorted entries, indented,
// trailing newline. An error is returned for duplicate keys — every
// metric key must be unique for Diff to be meaningful.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	s.Sort()
	for i := 1; i < len(s.Entries); i++ {
		if s.Entries[i].Key == s.Entries[i-1].Key {
			return fmt.Errorf("metrics: duplicate snapshot key %q", s.Entries[i].Key)
		}
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: parsing snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("metrics: snapshot schema %d, want %d", s.Schema, SnapshotSchema)
	}
	return &s, nil
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// DiffOptions sets the per-kind tolerance rules. All tolerances are
// relative fractions (0.01 = 1%).
type DiffOptions struct {
	// TimeTol allows Time metrics to grow by this fraction before
	// flagging a regression; shrinking beyond it is an improvement.
	// Negative means 0 (exact); the CLI default is 1%.
	TimeTol float64
	// RateTol is the mirror rule for Rate metrics (lower is worse).
	RateTol float64
	// WorkTol allows Work metrics to move by this fraction in either
	// direction; the default 0 demands bit-stable operation counts —
	// the simulator's arithmetic is deterministic, so any drift in work
	// counters is a behavioural change, not noise.
	WorkTol float64
}

// DiffEntry is one compared metric that moved beyond tolerance.
type DiffEntry struct {
	Key  string  `json:"key"`
	Kind Kind    `json:"kind"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// Delta is the relative change (new-old)/|old|; ±Inf when old is 0.
	Delta float64 `json:"delta"`
}

func (d DiffEntry) String() string {
	return fmt.Sprintf("%s: %v → %v (%+.2f%%, %s)", d.Key, d.Old, d.New, 100*d.Delta, d.Kind)
}

// DiffResult is the outcome of comparing two snapshots.
type DiffResult struct {
	// Compared counts keys present in both snapshots.
	Compared int `json:"compared"`
	// Regressions are metrics that moved in the bad direction beyond
	// tolerance; Improvements moved in the good direction beyond it.
	Regressions  []DiffEntry `json:"regressions,omitempty"`
	Improvements []DiffEntry `json:"improvements,omitempty"`
	// Added keys exist only in the new snapshot; Removed only in the
	// old. Removed metrics fail the diff (coverage must not silently
	// shrink); added ones do not.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Failed reports whether the diff should gate (non-zero exit): any
// regression, or any metric that disappeared.
func (d *DiffResult) Failed() bool {
	return len(d.Regressions) > 0 || len(d.Removed) > 0
}

// Diff compares two snapshots under the tolerance rules. The result is
// ordered by key throughout.
func Diff(old, new *Snapshot, opt DiffOptions) *DiffResult {
	oldBy := map[string]SnapshotEntry{}
	for _, e := range old.Entries {
		oldBy[e.Key] = e
	}
	res := &DiffResult{}
	seen := map[string]bool{}
	newEntries := append([]SnapshotEntry(nil), new.Entries...)
	sort.Slice(newEntries, func(i, j int) bool { return newEntries[i].Key < newEntries[j].Key })
	for _, e := range newEntries {
		o, ok := oldBy[e.Key]
		seen[e.Key] = true
		if !ok {
			res.Added = append(res.Added, e.Key)
			continue
		}
		res.Compared++
		if e.Value == o.Value {
			continue
		}
		var rel float64
		if o.Value != 0 {
			rel = (e.Value - o.Value) / math.Abs(o.Value)
		} else {
			rel = math.Inf(1)
			if e.Value < 0 {
				rel = math.Inf(-1)
			}
		}
		de := DiffEntry{Key: e.Key, Kind: e.Kind, Old: o.Value, New: e.Value, Delta: rel}
		switch e.Kind {
		case Work:
			if math.Abs(rel) > opt.WorkTol {
				res.Regressions = append(res.Regressions, de)
			}
		case Time:
			switch {
			case rel > opt.TimeTol:
				res.Regressions = append(res.Regressions, de)
			case rel < -opt.TimeTol:
				res.Improvements = append(res.Improvements, de)
			}
		case Rate:
			switch {
			case rel < -opt.RateTol:
				res.Regressions = append(res.Regressions, de)
			case rel > opt.RateTol:
				res.Improvements = append(res.Improvements, de)
			}
		}
	}
	oldKeys := make([]string, 0, len(oldBy))
	for k := range oldBy {
		oldKeys = append(oldKeys, k)
	}
	sort.Strings(oldKeys)
	for _, k := range oldKeys {
		if !seen[k] {
			res.Removed = append(res.Removed, k)
		}
	}
	return res
}

// Render writes the human-readable diff report.
func (d *DiffResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "compared %d metrics: %d regressions, %d improvements, %d added, %d removed\n",
		d.Compared, len(d.Regressions), len(d.Improvements), len(d.Added), len(d.Removed)); err != nil {
		return err
	}
	for _, e := range d.Regressions {
		if _, err := fmt.Fprintf(w, "  REGRESSION %s\n", e); err != nil {
			return err
		}
	}
	for _, k := range d.Removed {
		if _, err := fmt.Fprintf(w, "  REMOVED    %s\n", k); err != nil {
			return err
		}
	}
	for _, e := range d.Improvements {
		if _, err := fmt.Fprintf(w, "  improved   %s\n", e); err != nil {
			return err
		}
	}
	for _, k := range d.Added {
		if _, err := fmt.Fprintf(w, "  added      %s\n", k); err != nil {
			return err
		}
	}
	return nil
}
