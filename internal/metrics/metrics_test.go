package metrics

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

func TestRegistryStable(t *testing.T) {
	t.Parallel()
	if NumCounters() == 0 {
		t.Fatal("empty registry")
	}
	for _, c := range perfmodel.KernelClasses() {
		id := FlopsFor(c)
		if got := id.Def().Name; !strings.HasPrefix(got, "flops.") {
			t.Errorf("FlopsFor(%v) = %q", c, got)
		}
		if id.Def().Kind != Work {
			t.Errorf("flop counter %v is %v, want work", id, id.Def().Kind)
		}
	}
	for c := Collective(0); c < NumCollectives(); c++ {
		if got := CollTime(c).Def(); got.Kind != Time || !strings.HasSuffix(got.Name, ".ns") {
			t.Errorf("CollTime(%v) = %+v", c, got)
		}
	}
	for _, d := range Counters() {
		id, ok := Lookup(d.Name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", d.Name)
		}
		if id.Def().Name != d.Name {
			t.Fatalf("Lookup(%q) → %q", d.Name, id.Def().Name)
		}
	}
	if _, ok := Lookup("no.such.counter"); ok {
		t.Error("Lookup invented a counter")
	}
}

// TestSamplingGrid drives one PMU through a long virtual run with a
// tiny sample cap and checks the decimation invariants: the final
// period is a power-of-two multiple of the configured one, samples sit
// on its grid strictly increasing, the cap holds, and replaying the
// same input reproduces the series exactly.
func TestSamplingGrid(t *testing.T) {
	t.Parallel()
	const base = 10 * units.Microsecond
	run := func() RankCounters {
		p := NewRankPMU(Config{Period: base, MaxSamples: 4}, 2)
		now := units.Duration(0)
		for i := 0; i < 300; i++ {
			p.Add(MemDRAM, float64(i))
			now += units.Duration(3+i%7) * units.Microsecond
			p.Observe(now)
		}
		return p.Counters(0)
	}
	rc := run()
	if len(rc.Samples) == 0 || len(rc.Samples) > 4 {
		t.Fatalf("got %d samples, want 1..4", len(rc.Samples))
	}
	if rc.Period <= 0 || rc.Period%base != 0 {
		t.Fatalf("final period %v not a multiple of %v", rc.Period, base)
	}
	if k := rc.Period / base; k&(k-1) != 0 {
		t.Fatalf("period grew by non-power-of-two factor %d", k)
	}
	last := units.Duration(0)
	prev := -1.0
	for i, s := range rc.Samples {
		if s.At%rc.Period != 0 || s.At <= last {
			t.Fatalf("sample %d at %v off the %v grid (prev %v)", i, s.At, rc.Period, last)
		}
		last = s.At
		if v := s.Values[MemDRAM]; v < prev {
			t.Fatalf("cumulative counter decreased: %v after %v", v, prev)
		} else {
			prev = v
		}
	}
	if !reflect.DeepEqual(rc, run()) {
		t.Fatal("replaying identical input produced a different series")
	}
}

// TestAggregateSeries checks the cross-rank merge: the job series uses
// the coarsest per-rank period, sums last-known values, and freezes
// finished ranks at their final counters.
func TestAggregateSeries(t *testing.T) {
	t.Parallel()
	const base = 10 * units.Microsecond
	mk := func(stop units.Duration, cap int) RankCounters {
		p := NewRankPMU(Config{Period: base, MaxSamples: cap}, 1)
		for now := units.Duration(0); now <= stop; now += base {
			p.Add(SentMsgs, 1)
			p.Observe(now)
		}
		return p.Counters(0)
	}
	jc := &JobCounters{Ranks: []RankCounters{
		mk(100*units.Microsecond, 64), // fine grid, long
		mk(40*units.Microsecond, 2),   // decimated → coarser grid, short
	}}
	period, samples := jc.AggregateSeries()
	coarsest := jc.Ranks[0].Period
	if jc.Ranks[1].Period > coarsest {
		coarsest = jc.Ranks[1].Period
	}
	if period != coarsest {
		t.Fatalf("aggregate period %v, want coarsest %v", period, coarsest)
	}
	if len(samples) == 0 {
		t.Fatal("no aggregate samples")
	}
	final := samples[len(samples)-1].Values[SentMsgs]
	want := jc.Total(SentMsgs)
	if final != want {
		t.Fatalf("final aggregate %v, want job total %v", final, want)
	}
	prev := -1.0
	for i, s := range samples {
		if s.At != units.Duration(i+1)*period {
			t.Fatalf("aggregate sample %d at %v, want %v", i, s.At, units.Duration(i+1)*period)
		}
		if v := s.Values[SentMsgs]; v < prev {
			t.Fatalf("aggregate decreased at %v", s.At)
		} else {
			prev = v
		}
	}
}

func snapshotPair() (*Snapshot, *Snapshot) {
	mk := func() *Snapshot {
		s := NewSnapshot(map[string]string{"suite": "test"})
		s.Add("job/makespan.ns", 1e9, Time, "ns")
		s.Add("job/ctr/flops.spmv", 5e8, Work, "flops")
		s.Add("job/rate/gflops", 0.5, Rate, "gflop/s")
		return s
	}
	return mk(), mk()
}

func TestSnapshotRoundTripAndSelfDiff(t *testing.T) {
	t.Parallel()
	s, _ := snapshotPair()
	var b1, b2 bytes.Buffer
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteJSON is not byte-deterministic")
	}
	back, err := ReadSnapshot(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip changed the snapshot:\n%+v\n%+v", back, s)
	}
	res := Diff(s, back, DiffOptions{})
	if res.Failed() || res.Compared != 3 || len(res.Added)+len(res.Removed) != 0 {
		t.Fatalf("self-diff not clean: %+v", res)
	}
}

func TestSnapshotRejectsDuplicateKeys(t *testing.T) {
	t.Parallel()
	s := NewSnapshot(nil)
	s.Add("k", 1, Work, "")
	s.Add("k", 2, Work, "")
	if err := s.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestDiffDirectionRules(t *testing.T) {
	t.Parallel()
	opt := DiffOptions{TimeTol: 0.01, RateTol: 0.01}
	cases := []struct {
		name          string
		mutate        func(*Snapshot)
		fail, improve bool
	}{
		{"time regression", func(s *Snapshot) { s.Entries[0].Value *= 1.05 }, true, false},
		{"time improvement", func(s *Snapshot) { s.Entries[0].Value *= 0.9 }, false, true},
		{"time within tol", func(s *Snapshot) { s.Entries[0].Value *= 1.005 }, false, false},
		{"work drift fails exactly", func(s *Snapshot) { s.Entries[1].Value++ }, true, false},
		{"rate drop", func(s *Snapshot) { s.Entries[2].Value *= 0.9 }, true, false},
		{"rate gain", func(s *Snapshot) { s.Entries[2].Value *= 1.1 }, false, true},
		{"removed metric fails", func(s *Snapshot) { s.Entries = s.Entries[:2] }, true, false},
		{"added metric passes", func(s *Snapshot) { s.Add("job/new", 1, Work, "") }, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, cur := snapshotPair()
			tc.mutate(cur)
			res := Diff(old, cur, opt)
			if res.Failed() != tc.fail {
				t.Fatalf("Failed() = %v, want %v (%+v)", res.Failed(), tc.fail, res)
			}
			if (len(res.Improvements) > 0) != tc.improve {
				t.Fatalf("improvements = %v, want %v", res.Improvements, tc.improve)
			}
		})
	}
}

func TestDiffZeroOldGoesInf(t *testing.T) {
	t.Parallel()
	old, cur := snapshotPair()
	old.Entries[0].Value = 0
	res := Diff(old, cur, DiffOptions{TimeTol: 0.01})
	if len(res.Regressions) != 1 || !math.IsInf(res.Regressions[0].Delta, 1) {
		t.Fatalf("zero-old time growth should be an Inf-delta regression: %+v", res)
	}
}
