package main

import (
	"context"
	"fmt"
	"io"

	"a64fxbench"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/serve"
)

// countersCmd runs experiments with the virtual PMU enabled and exports
// the counters: -format=text (default; per-job totals, derived rates
// and phase attribution), -format=json (the regression sentinel's
// canonical snapshot, diffable with `a64fxbench diff`), or -format=csv
// (the sampled counter series in long form). No ids means the full
// suite — every paper artifact plus every extension. -o redirects to a
// file, -period sets the virtual-time sampling period. The flags become
// a core.Request and run through the same executor the serve daemon's
// /v1/counters uses.
func countersCmd(ctx context.Context, ids []string, cfg sweepConfig) error {
	if len(ids) == 0 {
		for _, e := range a64fxbench.Experiments() {
			ids = append(ids, e.ID)
		}
		for _, e := range a64fxbench.Extensions() {
			ids = append(ids, e.ID)
		}
	}
	req, err := cfg.request(ids)
	if err != nil {
		return err
	}
	if err := serve.CheckFormat("counters", req.Format); err != nil {
		return err
	}
	return withOutput(cfg, func(w io.Writer) error {
		return serve.WriteCounters(ctx, w, req, cfg.jobs)
	})
}

// diffCmd compares two counter snapshots under the tolerance rules and
// exits non-zero (through the returned error) on any regression or
// removed metric — the run-to-run sentinel. -tol sets the relative
// tolerance for Time and Rate metrics; Work metrics must match exactly.
//
// When the two snapshots were priced by different compute models (their
// Meta["model"] entries disagree, e.g. a roofline run diffed against an
// `-model=ecm` run), the tolerance gate makes no sense — the models are
// supposed to disagree — so diffCmd instead renders the report-only
// per-phase model-delta table and exits zero.
func diffCmd(w io.Writer, oldPath, newPath string, cfg sweepConfig) error {
	oldSnap, err := metrics.LoadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := metrics.LoadSnapshot(newPath)
	if err != nil {
		return err
	}
	om, nm := oldSnap.Meta["model"], newSnap.Meta["model"]
	if om != "" && nm != "" && om != nm {
		return obs.ModelDelta(oldSnap, newSnap).Render(w)
	}
	res := metrics.Diff(oldSnap, newSnap, metrics.DiffOptions{
		TimeTol: cfg.tol, RateTol: cfg.tol,
	})
	if err := res.Render(w); err != nil {
		return err
	}
	if res.Failed() {
		return fmt.Errorf("diff: %d regression(s), %d removed metric(s)",
			len(res.Regressions), len(res.Removed))
	}
	return nil
}
