package main

import (
	"context"
	"fmt"
	"io"

	"a64fxbench"
	"a64fxbench/internal/core"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sweep"
	"a64fxbench/internal/units"
)

// countersCmd runs experiments with the virtual PMU enabled and exports
// the counters: -format=text (default; per-job totals, derived rates
// and phase attribution), -format=json (the regression sentinel's
// canonical snapshot, diffable with `a64fxbench diff`), or -format=csv
// (the sampled counter series in long form). No ids means the full
// suite — every paper artifact plus every extension. -o redirects to a
// file, -period sets the virtual-time sampling period.
func countersCmd(ctx context.Context, ids []string, cfg sweepConfig) error {
	if len(ids) == 0 {
		for _, e := range a64fxbench.Experiments() {
			ids = append(ids, e.ID)
		}
		for _, e := range a64fxbench.Extensions() {
			ids = append(ids, e.ID)
		}
	}
	opt := core.Options{
		Quick: cfg.quick, Congestion: cfg.congestion, Engine: cfg.engine,
		Counters: &metrics.Config{Period: units.Duration(cfg.period)},
	}
	eng := sweep.New(cfg.jobs)
	eng.FailFast = cfg.failFast

	switch cfg.format {
	case "json":
		snap, _, err := sweep.CounterSnapshot(ctx, eng, ids, opt)
		if err != nil {
			return err
		}
		return withOutput(cfg, snap.WriteJSON)
	case "text", "", "csv":
		jobs, err := runCounted(ctx, eng, ids, opt)
		if err != nil {
			return err
		}
		return withOutput(cfg, func(w io.Writer) error {
			if cfg.format == "csv" {
				return obs.WriteCounterCSV(w, jobs)
			}
			for _, jt := range jobs {
				cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt))
				if cr == nil {
					continue
				}
				if err := cr.Render(w); err != nil {
					return err
				}
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			return nil
		})
	default:
		return fmt.Errorf("counters: unknown format %q (want text, json or csv)", cfg.format)
	}
}

// runCounted executes the (deduplicated) ids with per-id memory sinks
// and returns every simulated job's trace in id order.
func runCounted(ctx context.Context, eng *sweep.Engine, ids []string, opt core.Options) ([]obs.JobTrace, error) {
	uniq := make([]string, 0, len(ids))
	seen := map[string]bool{}
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	sinks := make(map[string]*simmpi.MemorySink, len(uniq))
	for _, id := range uniq {
		sinks[id] = &simmpi.MemorySink{}
	}
	eng.SinkFor = func(id string) simmpi.TraceSink {
		if s, ok := sinks[id]; ok {
			return s
		}
		return nil
	}
	results := eng.Run(ctx, uniq, opt)
	if err := sweep.FirstError(results); err != nil {
		return nil, err
	}
	var jobs []obs.JobTrace
	for _, id := range uniq {
		jobs = append(jobs, obs.SplitJobs(sinks[id].Events)...)
	}
	return jobs, nil
}

// diffCmd compares two counter snapshots under the tolerance rules and
// exits non-zero (through the returned error) on any regression or
// removed metric — the run-to-run sentinel. -tol sets the relative
// tolerance for Time and Rate metrics; Work metrics must match exactly.
func diffCmd(w io.Writer, oldPath, newPath string, cfg sweepConfig) error {
	oldSnap, err := metrics.LoadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := metrics.LoadSnapshot(newPath)
	if err != nil {
		return err
	}
	res := metrics.Diff(oldSnap, newSnap, metrics.DiffOptions{
		TimeTol: cfg.tol, RateTol: cfg.tol,
	})
	if err := res.Render(w); err != nil {
		return err
	}
	if res.Failed() {
		return fmt.Errorf("diff: %d regression(s), %d removed metric(s)",
			len(res.Regressions), len(res.Removed))
	}
	return nil
}
