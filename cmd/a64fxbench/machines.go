package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/micro"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/spec"
)

// machinesCmd dispatches the machine-spec subcommands:
//
//	machines list              registered machines and where they came from
//	machines show <name>       resolved canonical spec JSON
//	machines validate <path>.. strict-check spec files or directories
//	machines calibrate <name>  refit the efficiency table against the anchors
func machinesCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: a64fxbench machines list|show|validate|calibrate ...")
	}
	switch args[0] {
	case "list":
		return machinesList()
	case "show":
		if len(args) != 2 {
			return fmt.Errorf("usage: a64fxbench machines show <name>")
		}
		return machinesShow(args[1])
	case "validate":
		if len(args) < 2 {
			return fmt.Errorf("usage: a64fxbench machines validate <spec.json|dir> [...]")
		}
		return validateSpecPaths(args[1:])
	case "calibrate":
		if len(args) != 2 {
			return fmt.Errorf("usage: a64fxbench machines calibrate <name>")
		}
		return calibrateCmd(args[1])
	default:
		return fmt.Errorf("machines: unknown subcommand %q (want list, show, validate or calibrate)", args[0])
	}
}

func machinesList() error {
	fmt.Printf("%-12s %-14s %-14s %6s %6s  %s\n", "NAME", "SOURCE", "DIGEST", "CORES", "NODES", "DESCRIPTION")
	for _, m := range spec.Machines() {
		fmt.Printf("%-12s %-14s %-14.12s %6d %6d  %s\n",
			m.Name(), spec.Default.Source(m.Name()), m.Digest(),
			m.CoresPerNode(), m.Spec.MaxNodes, m.Spec.Description)
	}
	return nil
}

func machinesShow(name string) error {
	m, ok := spec.Get(name)
	if !ok {
		return fmt.Errorf("machines: unknown machine %q (valid: %s)", name, strings.Join(spec.Names(), " "))
	}
	var buf map[string]any
	if err := json.Unmarshal(m.Spec.Canonical(), &buf); err != nil {
		return err
	}
	out, err := json.MarshalIndent(buf, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// validateSpecPaths strict-checks machine spec files and directories
// against a fresh registry seeded with the embedded machines (so
// overlays of stock systems resolve). Each failure prints the first
// offending JSON field path; the exit status is non-zero if any spec
// fails.
func validateSpecPaths(paths []string) error {
	reg := spec.NewRegistry()
	for _, m := range spec.Embedded() {
		if _, err := reg.Add(m, "embedded"); err != nil {
			return err
		}
	}
	// Expand directories to their sorted *.json files.
	var files []string
	failures := 0
	for _, path := range paths {
		fi, err := os.Stat(path)
		if err != nil {
			failures++
			fmt.Printf("  [FAIL] %-40s %v\n", path, err)
			continue
		}
		if !fi.IsDir() {
			files = append(files, path)
			continue
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			failures++
			fmt.Printf("  [FAIL] %-40s %v\n", path, err)
			continue
		}
		n := len(files)
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				files = append(files, filepath.Join(path, e.Name()))
			}
		}
		if len(files) == n {
			failures++
			fmt.Printf("  [FAIL] %-40s no *.json spec files\n", path)
			continue
		}
		sort.Strings(files[n:])
	}
	// Multi-pass load so overlays may reference machines defined by
	// later files (mirrors Registry.LoadDir); files still failing once
	// no pass makes progress report their error.
	pending := files
	for len(pending) > 0 {
		var next []string
		for _, path := range pending {
			raw, err := os.ReadFile(path)
			var m *spec.Machine
			if err == nil {
				m, err = reg.AddBytes(raw, "file:"+path)
			}
			if err != nil {
				next = append(next, path)
				continue
			}
			fmt.Printf("  [ok  ] %-40s machine %q (digest %.12s)\n", path, m.Name(), m.Digest())
		}
		if len(next) == len(pending) {
			for _, path := range next {
				raw, err := os.ReadFile(path)
				if err == nil {
					_, err = reg.AddBytes(raw, "file:"+path)
				}
				failures++
				fmt.Printf("  [FAIL] %-40s %v\n", path, err)
			}
			break
		}
		pending = next
	}
	if failures > 0 {
		return fmt.Errorf("machines validate: %d spec(s) failed", failures)
	}
	return nil
}

// calibrateCmd refits a machine's efficiency table against its declared
// anchors and prints the two fitted scales, the anchor comparison, and
// the refit table beside the declared one. Non-zero exit when the fit
// moves a scale by more than 1% — the spec's table and anchors disagree.
func calibrateCmd(name string) error {
	m, ok := spec.Get(name)
	if !ok {
		return fmt.Errorf("calibrate: unknown machine %q (valid: %s)", name, strings.Join(spec.Names(), " "))
	}
	cal, err := micro.Calibrate(m)
	if err != nil {
		return err
	}
	fmt.Printf("calibration of %s (2 free parameters)\n", cal.Machine)
	fmt.Printf("  memory-efficiency scale:  %.6f\n", cal.MemoryScale)
	fmt.Printf("  compute-efficiency scale: %.6f\n", cal.ComputeScale)
	fmt.Printf("  STREAM triad:  model %8.1f GB/s   anchor %8.1f GB/s\n",
		float64(cal.TriadModel)/1e9, float64(cal.TriadAnchor)/1e9)
	fmt.Printf("  peak flops:    model %8.1f GF/s   anchor %8.1f GF/s\n",
		float64(cal.PeakModel)/1e9, float64(cal.PeakAnchor)/1e9)
	if cal.LatencyAnchor > 0 {
		fmt.Printf("  8B latency:    model %8.3f µs     anchor %8.3f µs   (consistency check, not fitted)\n",
			cal.LatencyModel.Seconds()*1e6, cal.LatencyAnchor.Seconds()*1e6)
	}
	fmt.Printf("\n  %-16s %-22s %-22s\n", "kernel class", "declared (comp/mem)", "refit (comp/mem)")
	declared := arch.Efficiencies(arch.ID(cal.Machine))
	var classes []string
	for k := range cal.Eff {
		classes = append(classes, k.String())
	}
	sort.Strings(classes)
	for _, cn := range classes {
		k, _ := perfmodel.ParseKernelClass(cn)
		d, r := declared[k], cal.Eff[k]
		fmt.Printf("  %-16s %.4f / %.4f        %.4f / %.4f\n", cn, d.Compute, d.Memory, r.Compute, r.Memory)
	}
	if e := cal.MaxScaleError(); e > 0.01 {
		return fmt.Errorf("calibrate: declared table deviates %.2f%% from the anchors (tolerance 1%%)", e*100)
	}
	fmt.Println("\n  declared table reproduces the anchors to within 1%")
	return nil
}

// loadSpecs loads a machine-spec directory (the -specs flag, or the
// A64FXBENCH_SPECS environment variable when the flag is unset) into
// the default registry and registers every machine as a runnable
// system.
func loadSpecs(dir string) error {
	if dir == "" {
		return nil
	}
	machines, err := spec.LoadDir(dir)
	if err != nil {
		return err
	}
	for _, m := range machines {
		if _, err := arch.RegisterMachine(m); err != nil {
			return err
		}
	}
	return nil
}
