package main

import (
	"fmt"
	"sort"

	"a64fxbench"
	"a64fxbench/internal/arch"
	"a64fxbench/internal/micro"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// microCmd runs the model-validation microbenchmarks on one system (or
// all with an empty name).
func microCmd(sysName string) error {
	var systems []*arch.System
	if sysName == "" {
		systems = arch.All()
	} else {
		s, err := arch.Get(arch.ID(sysName))
		if err != nil {
			return err
		}
		systems = []*arch.System{s}
	}
	for _, sys := range systems {
		fmt.Printf("== %s ==\n", sys.ID)
		// STREAM sweep.
		var counts []int
		for c := 1; c <= sys.CoresPerNode(); c *= 2 {
			counts = append(counts, c)
		}
		if counts[len(counts)-1] != sys.CoresPerNode() {
			counts = append(counts, sys.CoresPerNode())
		}
		stream, err := micro.StreamTriad(sys, counts)
		if err != nil {
			return err
		}
		fmt.Printf("  STREAM triad:")
		for _, r := range stream {
			fmt.Printf("  %dc=%.0fGB/s", r.Cores, float64(r.Bandwidth)/1e9)
		}
		fmt.Printf("  (spec peak %.0f GB/s)\n", float64(sys.Node.PeakBandwidth())/1e9)
		// Ping-pong.
		pp, err := micro.PingPong(sys, []units.Bytes{0, 4 * units.KiB, units.MiB, 16 * units.MiB})
		if err != nil {
			return err
		}
		fmt.Printf("  ping-pong:   ")
		for _, r := range pp {
			if r.Bytes == 0 {
				fmt.Printf("  0B=%.2fµs", r.HalfRoundTrip.Seconds()*1e6)
			} else {
				fmt.Printf("  %v=%.2fGB/s", r.Bytes, float64(r.Bandwidth)/1e9)
			}
		}
		fmt.Println()
		// Allreduce sweep.
		maxN := 8
		if sys.MaxNodes < maxN {
			maxN = sys.MaxNodes
		}
		var nodeCounts []int
		for n := 1; n <= maxN; n *= 2 {
			nodeCounts = append(nodeCounts, n)
		}
		ar, err := micro.AllreduceSweep(sys, nodeCounts)
		if err != nil {
			return err
		}
		fmt.Printf("  allreduce 8B:")
		for _, r := range ar {
			fmt.Printf("  %dn=%.2fµs", r.Nodes, r.Time.Seconds()*1e6)
		}
		fmt.Println()
	}
	return nil
}

// profileCmd runs one benchmark on one system and prints the per-kernel-
// class time breakdown — the view the paper attributes to the Fujitsu
// profiler in its Figure 1 discussion.
func profileCmd(bench, sysName string) error {
	sys, err := arch.Get(arch.ID(sysName))
	if err != nil {
		return err
	}
	var rep simmpi.Report
	switch bench {
	case "hpcg":
		res, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: sys, Nodes: 1, Iterations: 10})
		if err != nil {
			return err
		}
		rep = res.Report
	case "minikab":
		res, err := a64fxbench.RunMinikab(a64fxbench.MinikabConfig{
			System: sys, Nodes: 1, RanksPerNode: min(sys.CoresPerNode(), 24), Iterations: 100,
		})
		if err != nil {
			return err
		}
		rep = res.Report
	case "nekbone":
		res, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: sys, Nodes: 1, Iterations: 20})
		if err != nil {
			return err
		}
		rep = res.Report
	case "cosa":
		nodes := 1
		if sys.ID == arch.A64FX {
			nodes = 2
		}
		res, err := a64fxbench.RunCOSA(a64fxbench.COSAConfig{System: sys, Nodes: nodes})
		if err != nil {
			return err
		}
		rep = res.Report
	case "castep":
		res, err := a64fxbench.RunCASTEP(a64fxbench.CASTEPConfig{System: sys, Cycles: 3})
		if err != nil {
			return err
		}
		rep = res.Report
	case "opensbli":
		res, err := a64fxbench.RunOpenSBLI(a64fxbench.OpenSBLIConfig{System: sys, Nodes: 1})
		if err != nil {
			return err
		}
		rep = res.Report
	default:
		return fmt.Errorf("unknown benchmark %q (hpcg, minikab, nekbone, cosa, castep, opensbli)", bench)
	}

	fmt.Printf("%s on %s — simulated profile\n", bench, sys.ID)
	fmt.Printf("  makespan:   %.4f s\n", rep.Seconds())
	fmt.Printf("  rate:       %.2f GFLOP/s\n", rep.GFLOPs())
	fmt.Printf("  mean busy:  %.4f s   mean comm wait: %.4f s (%.1f%%)\n",
		rep.MeanBusy.Seconds(), rep.MeanWait.Seconds(),
		100*rep.MeanWait.Seconds()/(rep.MeanBusy.Seconds()+rep.MeanWait.Seconds()+1e-30))
	fmt.Printf("  messages:   %d (%v)\n", rep.TotalMsgs, rep.TotalBytesSent)

	// Aggregate class times across ranks.
	classTotals := map[perfmodel.KernelClass]float64{}
	var busyTotal float64
	for _, r := range rep.Ranks {
		for class, d := range r.Stats.ClassTime {
			classTotals[class] += d.Seconds()
			busyTotal += d.Seconds()
		}
	}
	type kv struct {
		class perfmodel.KernelClass
		sec   float64
	}
	var rows []kv
	for c, s := range classTotals {
		rows = append(rows, kv{c, s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec > rows[j].sec })
	fmt.Println("  kernel-class breakdown (all-rank CPU time):")
	for _, r := range rows {
		fmt.Printf("    %-16s %8.3f s  %5.1f%%\n", r.class, r.sec, 100*r.sec/busyTotal)
	}
	return nil
}
