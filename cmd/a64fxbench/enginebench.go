package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/simmpi"
)

// engineBenchNodes fixes the benchmark scenario so snapshots taken on
// different days are comparable: 86 nodes × 48 cores = 4128 ranks, just
// above the 4096-rank floor where the event engine's advantage is
// quoted. The scenario itself is hpcg.EngineScaleConfig.
const engineBenchNodes = 86

// engineBenchResult is one engine's measurement in the snapshot.
type engineBenchResult struct {
	Engine      string  `json:"engine"`
	Ranks       int     `json:"ranks"`
	Msgs        int64   `json:"msgs"`
	WallMS      float64 `json:"wall_ms"`
	RanksPerSec float64 `json:"ranks_per_sec"`
}

// engineBenchSnapshot is the BENCH_engine.json schema. Speedup — the
// event engine's ranks/sec over the goroutine engine's, measured on one
// core — is the only field the regression gate compares: absolute wall
// times track the host machine, but the ratio of two runs interleaved
// on the same core is stable across hosts.
type engineBenchSnapshot struct {
	Scenario string              `json:"scenario"`
	Results  []engineBenchResult `json:"results"`
	Speedup  float64             `json:"speedup"`
}

// engineBenchTol is the allowed fractional drop in speedup versus the
// committed baseline before the gate fails.
const engineBenchTol = 0.15

// engineBenchReps is how many times each engine runs; the fastest rep
// counts. Minimum-of-N discards scheduler and GC interference, which
// otherwise dwarfs real regressions in a sub-second measurement.
const engineBenchReps = 3

// enginebenchCmd runs the weak-scaled HPCG scenario under both engines
// on a single core, verifies they agree bit-for-bit, and reports
// simulated-ranks/sec. With a baseline snapshot argument it becomes the
// CI regression gate: the measured event/goroutine speedup must not
// fall more than 15% below the baseline's. -o writes the new snapshot
// (the file CI uploads and, when re-baselining, commits).
func enginebenchCmd(cfg sweepConfig, args []string) error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	sys := arch.MustGet(arch.A64FX)
	snap := engineBenchSnapshot{
		Scenario: fmt.Sprintf("hpcg weak-scaled, %d nodes (%d ranks), a64fx, GOMAXPROCS=1",
			engineBenchNodes, engineBenchNodes*sys.CoresPerNode()),
	}
	type outcome struct {
		makespan, bytes uint64
		msgs            int64
		gflops          uint64
	}
	var outcomes []outcome
	for _, eng := range []simmpi.Engine{simmpi.EngineGoroutine, simmpi.EngineEvent} {
		var res hpcg.Result
		var wall time.Duration
		for rep := 0; rep < engineBenchReps; rep++ {
			start := time.Now()
			r, err := hpcg.Run(hpcg.EngineScaleConfig(sys, engineBenchNodes, eng))
			if err != nil {
				return fmt.Errorf("enginebench: %s engine: %w", eng, err)
			}
			if w := time.Since(start); rep == 0 || w < wall {
				res, wall = r, w
			}
		}
		snap.Results = append(snap.Results, engineBenchResult{
			Engine:      string(eng),
			Ranks:       res.Procs,
			Msgs:        res.Report.TotalMsgs,
			WallMS:      math.Round(wall.Seconds()*1e5) / 100,
			RanksPerSec: math.Round(float64(res.Procs) / wall.Seconds()),
		})
		outcomes = append(outcomes, outcome{
			makespan: uint64(res.Report.Makespan),
			msgs:     res.Report.TotalMsgs,
			bytes:    uint64(res.Report.TotalBytesSent),
			gflops:   math.Float64bits(res.GFLOPs),
		})
	}
	if outcomes[0] != outcomes[1] {
		return fmt.Errorf("enginebench: engines diverged on the benchmark scenario: goroutine %+v, event %+v",
			outcomes[0], outcomes[1])
	}
	snap.Speedup = math.Round(snap.Results[1].RanksPerSec/snap.Results[0].RanksPerSec*100) / 100

	if err := withOutput(cfg, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}); err != nil {
		return err
	}
	for _, r := range snap.Results {
		fmt.Fprintf(os.Stderr, "enginebench: %-9s %d ranks, %d msgs: %.1fms (%.0f ranks/s)\n",
			r.Engine, r.Ranks, r.Msgs, r.WallMS, r.RanksPerSec)
	}
	fmt.Fprintf(os.Stderr, "enginebench: event/goroutine speedup %.2f×\n", snap.Speedup)

	if len(args) == 0 {
		return nil
	}
	base, err := loadEngineBaseline(args[0])
	if err != nil {
		return err
	}
	if base.Scenario != snap.Scenario {
		return fmt.Errorf("enginebench: baseline scenario %q does not match %q; re-baseline with -o %s",
			base.Scenario, snap.Scenario, args[0])
	}
	floor := base.Speedup * (1 - engineBenchTol)
	if snap.Speedup < floor {
		return fmt.Errorf("enginebench: speedup regressed to %.2f×, baseline %.2f× (floor %.2f×)",
			snap.Speedup, base.Speedup, floor)
	}
	fmt.Fprintf(os.Stderr, "enginebench: within baseline (%.2f× ≥ %.2f× floor)\n", snap.Speedup, floor)
	return nil
}

func loadEngineBaseline(path string) (engineBenchSnapshot, error) {
	var s engineBenchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("enginebench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("enginebench: parsing baseline %s: %w", path, err)
	}
	if s.Speedup <= 0 {
		return s, fmt.Errorf("enginebench: baseline %s has no speedup field", path)
	}
	return s, nil
}
