package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"a64fxbench/internal/core"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sweep"
)

// traceExperiment runs one experiment with tracing enabled and exports
// the event stream: -format=text streams the classic timeline,
// -format=chrome writes a Perfetto-loadable trace-event file, and
// -format=json writes the full analysis report (communication matrix,
// roofline, critical path) per simulated job. -o redirects to a file.
func traceExperiment(ctx context.Context, id string, cfg sweepConfig) error {
	return withOutput(cfg, func(w io.Writer) error {
		return writeTrace(ctx, w, id, cfg)
	})
}

// writeTrace executes the traced run on the sweep engine and renders to w.
func writeTrace(ctx context.Context, w io.Writer, id string, cfg sweepConfig) error {
	var sink simmpi.TraceSink
	mem := &simmpi.MemorySink{}
	switch cfg.format {
	case "text", "":
		// Streams as the simulation runs; nothing is buffered.
		sink = obs.NewTextSink(w)
	case "chrome", "json":
		sink = mem
	default:
		return fmt.Errorf("trace: unknown format %q (want text, chrome or json)", cfg.format)
	}
	eng := sweep.New(1)
	eng.SinkFor = func(string) simmpi.TraceSink { return sink }
	res := eng.Run(ctx, []string{id}, core.Options{Quick: cfg.quick, Congestion: cfg.congestion, Engine: cfg.engine})[0]
	if res.Err != nil {
		return res.Err
	}
	if sink != mem {
		return sink.Close()
	}
	jobs := obs.SplitJobs(mem.Events)
	if cfg.format == "chrome" {
		return obs.WriteChrome(w, jobs)
	}
	reports := make([]*obs.Report, 0, len(jobs))
	for _, jt := range jobs {
		rep, err := obs.Analyze(jt, obs.A64FXPeaks(jt))
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// writeProfileSummary prints a compact observability digest of every
// simulated job an experiment ran: ranks, makespan, critical-path share
// and the dominant path phase.
func writeProfileSummary(w io.Writer, id string, tl simmpi.Timeline) error {
	jobs := obs.SplitJobs(tl)
	if _, err := fmt.Fprintf(w, "profile %s — %d simulated job(s)\n", id, len(jobs)); err != nil {
		return err
	}
	for _, jt := range jobs {
		rep, err := obs.Analyze(jt, obs.A64FXPeaks(jt))
		if err != nil {
			return err
		}
		cp := rep.CriticalPath
		top := "-"
		if len(cp.Phases) > 0 {
			top = fmt.Sprintf("%s %.0f%%", cp.Phases[0].Label, 100*cp.Phases[0].Fraction)
		}
		msgs, sent := rep.Comm.Totals()
		if _, err := fmt.Fprintf(w, "  %-44s ranks=%-5d makespan=%10.4fs crit-path=%5.1f%% msgs=%-9d sent=%-10v top=%s\n",
			jt.Label, rep.Ranks, rep.Makespan.Seconds(), 100*cp.Fraction, msgs, sent, top); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
