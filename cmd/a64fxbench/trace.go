package main

import (
	"context"
	"fmt"
	"io"

	"a64fxbench/internal/obs"
	"a64fxbench/internal/serve"
	"a64fxbench/internal/simmpi"
)

// traceExperiment runs one experiment with tracing enabled and exports
// the event stream: -format=text streams the classic timeline,
// -format=chrome writes a Perfetto-loadable trace-event file, and
// -format=json writes the full analysis report (communication matrix,
// roofline, critical path) per simulated job. -o redirects to a file.
// The flags become a core.Request and run through the same executor the
// serve daemon's /v1/trace uses.
func traceExperiment(ctx context.Context, id string, cfg sweepConfig) error {
	req, err := cfg.request([]string{id})
	if err != nil {
		return err
	}
	if err := serve.CheckFormat("trace", req.Format); err != nil {
		return err
	}
	return withOutput(cfg, func(w io.Writer) error {
		return serve.WriteTrace(ctx, w, req)
	})
}

// writeProfileSummary prints a compact observability digest of every
// simulated job an experiment ran: ranks, makespan, critical-path share
// and the dominant path phase.
func writeProfileSummary(w io.Writer, id string, tl simmpi.Timeline) error {
	jobs := obs.SplitJobs(tl)
	if _, err := fmt.Fprintf(w, "profile %s — %d simulated job(s)\n", id, len(jobs)); err != nil {
		return err
	}
	for _, jt := range jobs {
		rep, err := obs.Analyze(jt, obs.A64FXPeaks(jt))
		if err != nil {
			return err
		}
		cp := rep.CriticalPath
		top := "-"
		if len(cp.Phases) > 0 {
			top = fmt.Sprintf("%s %.0f%%", cp.Phases[0].Label, 100*cp.Phases[0].Fraction)
		}
		msgs, sent := rep.Comm.Totals()
		if _, err := fmt.Fprintf(w, "  %-44s ranks=%-5d makespan=%10.4fs crit-path=%5.1f%% msgs=%-9d sent=%-10v top=%s\n",
			jt.Label, rep.Ranks, rep.Makespan.Seconds(), 100*cp.Fraction, msgs, sent, top); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
