package main

import (
	"fmt"
	"math"

	"a64fxbench"
	"a64fxbench/internal/arch"
	"a64fxbench/internal/micro"
	"a64fxbench/internal/paper"
	"a64fxbench/internal/units"
)

// validateCmd is the self-check a downstream user runs after building:
// it verifies the machine models against the paper's Table I, the
// microbenchmarks against the spec inputs, and the single-node
// calibration anchors against the published measurements. Exit status is
// non-zero if any check fails.
func validateCmd() error {
	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  [%s] %-44s %s\n", status, name, detail)
	}

	fmt.Println("1. machine models vs the paper's Table I")
	for name, row := range paper.TableI {
		sys, err := arch.Get(arch.ID(name))
		if err != nil {
			check(string(name), false, "system missing")
			continue
		}
		specOK := sys.ClockGHz == row.ClockGHz &&
			sys.CoresPerNode() == row.CoresPerNode &&
			sys.VectorBits == row.VectorBits &&
			math.Abs(sys.PeakNodeGFlops()-row.MaxNodeDPGFlops) < 0.01
		check(string(name), specOK,
			fmt.Sprintf("%.1fGHz %dc %dbit %.1fGF", sys.ClockGHz,
				sys.CoresPerNode(), sys.VectorBits, sys.PeakNodeGFlops()))
	}

	fmt.Println("2. microbenchmarks vs specification inputs")
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		stream, err := micro.StreamTriad(sys, []int{sys.CoresPerNode()})
		if err != nil {
			return err
		}
		got := float64(stream[0].Bandwidth)
		lo, hi := micro.TriadExpectation(sys)
		check(fmt.Sprintf("%s STREAM", id), got >= float64(lo) && got <= float64(hi),
			fmt.Sprintf("%.0f GB/s (calibrated band %.0f–%.0f)", got/1e9, float64(lo)/1e9, float64(hi)/1e9))
		pp, err := micro.PingPong(sys, []units.Bytes{0})
		if err != nil {
			return err
		}
		lat := pp[0].HalfRoundTrip.Seconds()
		check(fmt.Sprintf("%s latency", id), lat > 0.5e-6 && lat < 5e-6,
			fmt.Sprintf("%.2f µs", lat*1e6))
	}

	fmt.Println("3. single-node calibration anchors vs published values")
	anchor := func(name string, measured, published, tolerance float64) {
		rel := math.Abs(measured-published) / published
		check(name, rel <= tolerance,
			fmt.Sprintf("%.3g vs paper %.3g (%+.1f%%)", measured, published, (measured-published)/published*100))
	}
	// HPCG (Table III).
	for _, row := range paper.TableIII {
		sys := arch.MustGet(arch.ID(row.System))
		res, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{
			System: sys, Nodes: 1, Iterations: 5, Optimised: row.Optimised,
		})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("HPCG %s", row.System)
		if row.Optimised {
			label += " (opt)"
		}
		anchor(label, res.GFLOPs, row.GFlops, 0.10)
	}
	// Nekbone (Table VI).
	for sysName, row := range paper.TableVI {
		sys := arch.MustGet(arch.ID(sysName))
		plain, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: sys, Nodes: 1, Iterations: 15})
		if err != nil {
			return err
		}
		fast, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: sys, Nodes: 1, Iterations: 15, FastMath: true})
		if err != nil {
			return err
		}
		anchor(fmt.Sprintf("Nekbone %s", sysName), plain.GFLOPs, row.GFlops, 0.08)
		anchor(fmt.Sprintf("Nekbone %s (fast)", sysName), fast.GFLOPs, row.GFlopsFastMath, 0.08)
	}
	// CASTEP (Table IX).
	for sysName, row := range paper.TableIX {
		sys := arch.MustGet(arch.ID(sysName))
		res, err := a64fxbench.RunCASTEP(a64fxbench.CASTEPConfig{System: sys, Cycles: 3})
		if err != nil {
			return err
		}
		anchor(fmt.Sprintf("CASTEP %s", sysName), res.SCFCyclesPerSecond, row.SCFCyclesPerSec, 0.08)
	}
	// OpenSBLI (Table X, 1-node column).
	for sysName, cols := range paper.TableX {
		sys := arch.MustGet(arch.ID(sysName))
		res, err := a64fxbench.RunOpenSBLI(a64fxbench.OpenSBLIConfig{System: sys, Nodes: 1})
		if err != nil {
			return err
		}
		anchor(fmt.Sprintf("OpenSBLI %s", sysName), res.Seconds, cols[0], 0.08)
	}

	if failures > 0 {
		return fmt.Errorf("validation failed: %d check(s)", failures)
	}
	fmt.Println("\nall checks passed")
	return nil
}
