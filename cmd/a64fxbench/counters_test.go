package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"a64fxbench/internal/metrics"
)

// writeSnap writes a minimal valid snapshot file for the diff tests.
func writeSnap(t *testing.T, path string, makespan, gflops float64) {
	t.Helper()
	s := metrics.NewSnapshot(map[string]string{"suite": "test"})
	s.Add("table3/000 hpcg/makespan.ns", makespan, metrics.Time, "ns")
	s.Add("table3/000 hpcg/ctr/flops.spmv", 5e8, metrics.Work, "flops")
	s.Add("table3/000 hpcg/rate/gflops", gflops, metrics.Rate, "gflop/s")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiffCmd pins the sentinel's exit behaviour: self-diff passes, an
// injected slowdown beyond tolerance fails with the regression named,
// and a within-tolerance drift passes.
func TestDiffCmd(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	samedPath := filepath.Join(dir, "same.json")
	slowPath := filepath.Join(dir, "slow.json")
	closePath := filepath.Join(dir, "close.json")
	writeSnap(t, oldPath, 1e9, 2.0)
	writeSnap(t, samedPath, 1e9, 2.0)
	writeSnap(t, slowPath, 1.05e9, 2.0)
	writeSnap(t, closePath, 1.005e9, 2.0)

	cfg := sweepConfig{tol: 0.01}
	var out bytes.Buffer
	if err := diffCmd(&out, oldPath, samedPath, cfg); err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, out.String())
	}
	out.Reset()
	err := diffCmd(&out, oldPath, slowPath, cfg)
	if err == nil {
		t.Fatalf("5%% slowdown at 1%% tolerance must fail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "makespan.ns") {
		t.Errorf("report does not name the regression:\n%s", out.String())
	}
	out.Reset()
	if err := diffCmd(&out, oldPath, closePath, cfg); err != nil {
		t.Fatalf("0.5%% drift at 1%% tolerance must pass: %v", err)
	}
	if err := diffCmd(&out, oldPath, filepath.Join(dir, "missing.json"), cfg); err == nil {
		t.Fatal("missing snapshot file must error")
	}
}

// TestCountersCmdFormats smoke-tests the counters command surface on a
// single quick experiment across all three formats.
func TestCountersCmdFormats(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ctx := rootContext()
	jsonPath := filepath.Join(dir, "snap.json")
	if err := countersCmd(ctx, []string{"table5"},
		sweepConfig{quick: true, jobs: 2, format: "json", out: jsonPath}); err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.LoadSnapshot(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) == 0 {
		t.Fatal("snapshot has no entries")
	}
	textPath := filepath.Join(dir, "out.txt")
	if err := countersCmd(ctx, []string{"table5"},
		sweepConfig{quick: true, jobs: 2, format: "text", out: textPath}); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "derived:") {
		t.Errorf("text report missing derived rates:\n%s", text)
	}
	csvPath := filepath.Join(dir, "out.csv")
	if err := countersCmd(ctx, []string{"table5"},
		sweepConfig{quick: true, jobs: 2, format: "csv", out: csvPath}); err != nil {
		t.Fatal(err)
	}
	csvOut, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvOut), "job,label,at_ns,counter,value") {
		t.Errorf("csv missing header:\n%.100s", csvOut)
	}
	if err := countersCmd(ctx, []string{"table5"},
		sweepConfig{quick: true, format: "bogus"}); err == nil {
		t.Fatal("unknown format must error")
	}
}
