package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"a64fxbench"
	"a64fxbench/internal/core"
	"a64fxbench/internal/serve"
	"a64fxbench/internal/sweep"
)

// sweepConfig carries the CLI flags that shape a sweep.
type sweepConfig struct {
	quick    bool
	compare  bool
	format   string
	jobs     int // worker bound; ≤ 0 means GOMAXPROCS
	failFast bool
	// profile collects each experiment's event timeline and prints a
	// per-job observability summary after its artifact.
	profile bool
	// congestion prices multi-node communication through the routed
	// contention model (core.Options.Congestion).
	congestion bool
	// engine selects the simmpi execution substrate for every simulated
	// job (core.Options.Engine); empty means the goroutine default.
	engine a64fxbench.Engine
	// machine names the target machine for machine-parameterized ids
	// (core.Request.Machine); empty means the default (A64FX).
	machine string
	// model selects the compute-phase pricing model
	// (core.Request.Model); empty means the roofline default.
	model string
	// out is the exporting commands' output file ("" = stdout).
	out string
	// period is the counters command's virtual-time sampling period
	// (0 = the metrics default).
	period time.Duration
	// tol is the diff command's relative tolerance for Time and Rate
	// metrics.
	tol float64
	// addr is the serve command's listen address.
	addr string
	// queue is the serve command's queue depth before 429s.
	queue int
	// debugAddr, when non-empty, opens a second listener serving
	// net/http/pprof under /debug/pprof/ (serve command only). Off by
	// default: profiling endpoints are opt-in and never share the API
	// listener.
	debugAddr string
	// logLevel is the serve command's request-log threshold: debug,
	// info (default), warn, error, or off.
	logLevel string
	// logFormat is the serve command's request-log encoding: json
	// (default) or text.
	logFormat string
}

// request assembles the unified, serializable request descriptor from
// the flag set — the same core.Request the serve daemon decodes from
// JSON, so a command line and a curl body run through identical
// validation and execution paths.
func (c sweepConfig) request(ids []string) (core.Request, error) {
	return c.rawRequest(ids).Normalized()
}

// requestLenient skips the id-existence check: the sweep path wants
// unknown ids to fail per-experiment, not abort the whole run.
func (c sweepConfig) requestLenient(ids []string) (core.Request, error) {
	return c.rawRequest(ids).NormalizedLenient()
}

func (c sweepConfig) rawRequest(ids []string) core.Request {
	return core.Request{
		IDs: ids, Quick: c.quick, Congestion: c.congestion,
		Engine: string(c.engine), Format: c.format, Compare: c.compare,
		PeriodNS: c.period.Nanoseconds(), Machine: c.machine,
		Model: c.model,
	}
}

// runSweep executes the requested experiments on the concurrent sweep
// engine and renders every artifact, in input order, to out. Failures do
// not abort the remaining experiments (unless failFast is set): completed
// artifacts are still rendered, a partial-results summary goes to errw,
// and a non-nil error makes the process exit non-zero.
func runSweep(ctx context.Context, out, errw io.Writer, ids []string, cfg sweepConfig) error {
	req, err := cfg.requestLenient(ids)
	if err != nil {
		return err
	}
	if err := serve.CheckFormat("sweep", req.Format); err != nil {
		return err
	}
	opt, err := req.Options()
	if err != nil {
		return err
	}
	opt.Profile = cfg.profile
	eng := sweep.New(cfg.jobs)
	eng.FailFast = cfg.failFast
	results := eng.Run(ctx, req.IDs, opt)

	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if err := core.RenderArtifact(out, r.Artifact, req.Format, req.Compare); err != nil {
			return err
		}
		if cfg.profile && len(r.Timeline) > 0 {
			if err := writeProfileSummary(out, r.ID, r.Timeline); err != nil {
				return err
			}
		}
	}
	sum := sweep.Summarize(results)
	if len(results) > 1 {
		fmt.Fprintf(errw, "sweep: %s (%s of simulated-experiment compute)\n",
			sum, sum.Elapsed.Round(1e6))
		for _, r := range results {
			if r.Err == nil {
				fmt.Fprintf(errw, "  %-14s ok      %8s%s\n",
					r.ID, r.Elapsed.Round(1e6), cachedNote(r))
			}
		}
	}
	if sum.Failed+sum.Skipped > 0 {
		for _, r := range results {
			if r.Err == nil {
				continue
			}
			state := "failed"
			if r.Skipped() {
				state = "skipped"
			}
			fmt.Fprintf(errw, "  %-14s %-7s %v\n", r.ID, state, r.Err)
		}
		// FirstError skips cancellation errors; a sweep interrupted
		// before any experiment failed has none, so fall back to the
		// first skip cause (e.g. "context canceled" after Ctrl-C).
		cause := sweep.FirstError(results)
		if cause == nil {
			for _, r := range results {
				if r.Err != nil {
					cause = r.Err
					break
				}
			}
		}
		return fmt.Errorf("sweep incomplete (%s): %w", sum, cause)
	}
	return nil
}

// cachedNote marks cache hits in the timing listing.
func cachedNote(r sweep.Result) string {
	if r.Cached {
		return "  (cached)"
	}
	return ""
}
