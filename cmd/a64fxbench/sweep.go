package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"a64fxbench"
	"a64fxbench/internal/sweep"
)

// sweepConfig carries the CLI flags that shape a sweep.
type sweepConfig struct {
	quick    bool
	compare  bool
	format   string
	jobs     int // worker bound; ≤ 0 means GOMAXPROCS
	failFast bool
	// profile collects each experiment's event timeline and prints a
	// per-job observability summary after its artifact.
	profile bool
	// congestion prices multi-node communication through the routed
	// contention model (core.Options.Congestion).
	congestion bool
	// engine selects the simmpi execution substrate for every simulated
	// job (core.Options.Engine); empty means the goroutine default.
	engine a64fxbench.Engine
	// out is the exporting commands' output file ("" = stdout).
	out string
	// period is the counters command's virtual-time sampling period
	// (0 = the metrics default).
	period time.Duration
	// tol is the diff command's relative tolerance for Time and Rate
	// metrics.
	tol float64
}

// runSweep executes the requested experiments on the concurrent sweep
// engine and renders every artifact, in input order, to out. Failures do
// not abort the remaining experiments (unless failFast is set): completed
// artifacts are still rendered, a partial-results summary goes to errw,
// and a non-nil error makes the process exit non-zero.
func runSweep(ctx context.Context, out, errw io.Writer, ids []string, cfg sweepConfig) error {
	switch cfg.format {
	case "text", "", "chart", "json", "csv":
	default:
		return fmt.Errorf("unknown format %q", cfg.format)
	}
	eng := sweep.New(cfg.jobs)
	eng.FailFast = cfg.failFast
	results := eng.Run(ctx, ids, a64fxbench.Options{
		Quick: cfg.quick, Profile: cfg.profile, Congestion: cfg.congestion,
		Engine: cfg.engine,
	})

	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if err := renderArtifact(out, r.Artifact, cfg); err != nil {
			return err
		}
		if cfg.profile && len(r.Timeline) > 0 {
			if err := writeProfileSummary(out, r.ID, r.Timeline); err != nil {
				return err
			}
		}
	}
	sum := sweep.Summarize(results)
	if len(results) > 1 {
		fmt.Fprintf(errw, "sweep: %s (%s of simulated-experiment compute)\n",
			sum, sum.Elapsed.Round(1e6))
		for _, r := range results {
			if r.Err == nil {
				fmt.Fprintf(errw, "  %-14s ok      %8s%s\n",
					r.ID, r.Elapsed.Round(1e6), cachedNote(r))
			}
		}
	}
	if sum.Failed+sum.Skipped > 0 {
		for _, r := range results {
			if r.Err == nil {
				continue
			}
			state := "failed"
			if r.Skipped() {
				state = "skipped"
			}
			fmt.Fprintf(errw, "  %-14s %-7s %v\n", r.ID, state, r.Err)
		}
		// FirstError skips cancellation errors; a sweep interrupted
		// before any experiment failed has none, so fall back to the
		// first skip cause (e.g. "context canceled" after Ctrl-C).
		cause := sweep.FirstError(results)
		if cause == nil {
			for _, r := range results {
				if r.Err != nil {
					cause = r.Err
					break
				}
			}
		}
		return fmt.Errorf("sweep incomplete (%s): %w", sum, cause)
	}
	return nil
}

// cachedNote marks cache hits in the timing listing.
func cachedNote(r sweep.Result) string {
	if r.Cached {
		return "  (cached)"
	}
	return ""
}

// renderArtifact writes one artifact in the selected format.
func renderArtifact(out io.Writer, art *a64fxbench.Artifact, cfg sweepConfig) error {
	switch cfg.format {
	case "json":
		return art.WriteJSON(out)
	case "csv":
		return art.WriteCSV(out)
	case "chart":
		_, err := fmt.Fprintln(out, art.RenderChart())
		return err
	default: // "text", ""
		if cfg.compare {
			_, err := fmt.Fprintln(out, art.RenderComparison())
			return err
		}
		_, err := fmt.Fprintln(out, art.Render())
		return err
	}
}
