package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunSweepPartialFailure is the regression test for the multi-id
// failure mode: one bad experiment in the list must not abort the rest —
// every other artifact still renders, the summary names the failure, and
// the returned error makes main exit non-zero.
func TestRunSweepPartialFailure(t *testing.T) {
	t.Parallel()
	var out, errw bytes.Buffer
	err := runSweep(context.Background(), &out, &errw,
		[]string{"table1", "nosuch", "table2"},
		sweepConfig{quick: true, jobs: 2})
	if err == nil {
		t.Fatal("a failed experiment must surface as a non-nil error (non-zero exit)")
	}
	for _, want := range []string{"TABLE1", "TABLE2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %s despite partial failure:\n%s", want, out.String())
		}
	}
	summary := errw.String()
	if !strings.Contains(summary, "2 ok, 1 failed") {
		t.Errorf("stderr missing partial-results summary:\n%s", summary)
	}
	if !strings.Contains(summary, "nosuch") {
		t.Errorf("stderr does not name the failed experiment:\n%s", summary)
	}
}

func TestRunSweepFailFast(t *testing.T) {
	t.Parallel()
	var out, errw bytes.Buffer
	err := runSweep(context.Background(), &out, &errw,
		[]string{"nosuch", "table1", "table2"},
		sweepConfig{quick: true, jobs: 1, failFast: true})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(errw.String(), "skipped") {
		t.Errorf("fail-fast should report skipped experiments:\n%s", errw.String())
	}
}

func TestRunSweepSuccess(t *testing.T) {
	t.Parallel()
	var out, errw bytes.Buffer
	if err := runSweep(context.Background(), &out, &errw,
		[]string{"table1"}, sweepConfig{quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "TABLE1") {
		t.Errorf("missing artifact:\n%s", out.String())
	}
	// Single-experiment runs stay quiet on stderr, like the old CLI.
	if errw.Len() != 0 {
		t.Errorf("unexpected stderr for clean single run:\n%s", errw.String())
	}
}

func TestRunSweepFormats(t *testing.T) {
	t.Parallel()
	for _, format := range []string{"json", "csv", "chart"} {
		var out, errw bytes.Buffer
		if err := runSweep(context.Background(), &out, &errw,
			[]string{"table1"}, sweepConfig{quick: true, format: format}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: empty output", format)
		}
	}
	err := runSweep(context.Background(), &bytes.Buffer{}, &bytes.Buffer{},
		[]string{"table1"}, sweepConfig{format: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("bad format should fail upfront, got %v", err)
	}
}

func TestRunSweepCancelled(t *testing.T) {
	t.Parallel()
	// A sweep interrupted before any experiment fails has only skipped
	// results; the error must still carry a real cause, not a nil %w.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errw bytes.Buffer
	err := runSweep(ctx, &out, &errw, []string{"table1", "table2"},
		sweepConfig{quick: true})
	if err == nil {
		t.Fatal("cancelled sweep should report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}
	if strings.Contains(err.Error(), "%!w") {
		t.Errorf("error wraps nil: %v", err)
	}
}
