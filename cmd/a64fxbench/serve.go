package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"a64fxbench/internal/serve"
)

// requestLogger builds the serve daemon's structured request logger
// from the -log-level / -log-format flags. Level "off" (or "none")
// disables request logging entirely; the default is one JSON object per
// request on stdout, so the log stream is machine-parseable without
// touching the stderr banner.
func requestLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off", "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, error or off)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json", "":
		return slog.New(slog.NewJSONHandler(os.Stdout, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stdout, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want json or text)", format)
	}
}

// debugServer serves net/http/pprof on its own listener — a separate,
// opt-in address so profiling endpoints are never reachable through the
// API port.
func debugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux}
}

// serveCmd runs the sweep-as-a-service daemon: a long-running HTTP/JSON
// API over the unified core.Request descriptor. POST /v1/run, /v1/sweep,
// /v1/trace, /v1/counters and /v1/links accept the same JSON request
// body; GET /v1/healthz is the liveness probe, GET /metrics the
// Prometheus exposition and GET /v1/debug/slow the slow-request flight
// recorder. -addr sets the listen address, -j the concurrent execution
// limit, -queue the backlog before 429s, -log-level/-log-format the
// structured request log and -debug-addr an optional second listener
// with /debug/pprof/. Ctrl-C (or SIGINT) drains in-flight requests and
// exits cleanly.
func serveCmd(ctx context.Context, cfg sweepConfig) error {
	logger, err := requestLogger(cfg.logLevel, cfg.logFormat)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := serve.New(serve.Config{
		Workers:       cfg.jobs,
		MaxConcurrent: cfg.jobs,
		QueueDepth:    cfg.queue,
		Logger:        logger,
	})
	hs := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if cfg.debugAddr != "" {
		ds := debugServer(cfg.debugAddr)
		go func() {
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "a64fxbench serve: debug listener: %v\n", err)
			}
		}()
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "a64fxbench serve: pprof on http://%s/debug/pprof/\n", cfg.debugAddr)
	}
	fmt.Fprintf(os.Stderr, "a64fxbench serve: listening on http://%s (POST /v1/run /v1/sweep /v1/trace /v1/counters /v1/links; GET /v1/machines /v1/healthz /v1/debug/slow /metrics)\n", cfg.addr)
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "a64fxbench serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}
