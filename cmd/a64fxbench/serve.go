package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"a64fxbench/internal/serve"
)

// serveCmd runs the sweep-as-a-service daemon: a long-running HTTP/JSON
// API over the unified core.Request descriptor. POST /v1/run, /v1/sweep,
// /v1/trace, /v1/counters and /v1/links accept the same JSON request
// body; GET /v1/healthz is the liveness probe and GET /metrics the
// Prometheus exposition. -addr sets the listen address, -j the
// concurrent execution limit, -queue the backlog before 429s. Ctrl-C
// (or SIGINT) drains in-flight requests and exits cleanly.
func serveCmd(ctx context.Context, cfg sweepConfig) error {
	srv := serve.New(serve.Config{
		Workers:       cfg.jobs,
		MaxConcurrent: cfg.jobs,
		QueueDepth:    cfg.queue,
	})
	hs := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "a64fxbench serve: listening on http://%s (POST /v1/run /v1/sweep /v1/trace /v1/counters /v1/links; GET /v1/machines /v1/healthz /metrics)\n", cfg.addr)
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "a64fxbench serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}
