// Command a64fxbench reproduces the tables and figures of Jackson et
// al., "Investigating Applications on the A64FX" (IEEE CLUSTER 2020) on
// the simulated systems.
//
// Usage:
//
//	a64fxbench list                 list all experiments
//	a64fxbench sysinfo              print the machine models (Table I)
//	a64fxbench run <id> [...]       run experiments (e.g. table3 fig4)
//	a64fxbench all                  run everything in paper order
//	a64fxbench trace <id>           export one experiment's event trace
//	a64fxbench counters [id ...]    run with the virtual PMU, export counters
//	a64fxbench diff <old> <new>     compare counter snapshots (regression gate)
//	a64fxbench serve                run the sweep-as-a-service HTTP daemon
//
// Flags:
//
//	-quick      reduce simulated iteration counts (fast smoke runs)
//	-compare    show paper-vs-measured deltas beside each value
//	-j N        run up to N experiments concurrently (default GOMAXPROCS)
//	-profile    print per-job observability summaries after each artifact
//	-format     text/chart/json/csv for run; text/chrome/json for trace
//	-o FILE     write trace output to FILE instead of stdout
//
// Flags may appear before or after the command and its arguments
// (`a64fxbench trace fig3 -format=chrome` works).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"a64fxbench"
)

// command is one CLI subcommand. Dispatch, argument checking and the
// usage listing are all driven off the commands table below — there is
// no hand-rolled switch.
type command interface {
	// Name is the dispatch token, e.g. "run".
	Name() string
	// Synopsis is the usage line's argument form, e.g. "run <id> [...]".
	Synopsis() string
	// Describe is the one-line help text.
	Describe() string
	// Run executes the command with the global flag config and the
	// positional arguments after the command name.
	Run(ctx context.Context, cfg sweepConfig, args []string) error
}

// cmdFunc adapts a plain function to the command interface.
type cmdFunc struct {
	name     string
	synopsis string
	describe string
	// minArgs is the required positional-argument count; fewer yields a
	// usage error without invoking run.
	minArgs int
	run     func(ctx context.Context, cfg sweepConfig, args []string) error
}

func (c cmdFunc) Name() string     { return c.name }
func (c cmdFunc) Synopsis() string { return c.synopsis }
func (c cmdFunc) Describe() string { return c.describe }
func (c cmdFunc) Run(ctx context.Context, cfg sweepConfig, args []string) error {
	if len(args) < c.minArgs {
		return fmt.Errorf("usage: a64fxbench %s", c.synopsis)
	}
	return c.run(ctx, cfg, args)
}

// commands is the dispatch table, in usage order.
var commands = []command{
	cmdFunc{
		name: "list", synopsis: "list",
		describe: "list all experiments and extensions",
		run: func(context.Context, sweepConfig, []string) error {
			return list()
		},
	},
	cmdFunc{
		name: "sysinfo", synopsis: "sysinfo",
		describe: "print the machine models (Table I)",
		run: func(context.Context, sweepConfig, []string) error {
			return sysinfo()
		},
	},
	cmdFunc{
		name: "run", synopsis: "run <experiment-id> [...]",
		describe: "run experiments (e.g. table3 fig4)",
		minArgs:  1,
		run: func(ctx context.Context, cfg sweepConfig, args []string) error {
			return runSweep(ctx, os.Stdout, os.Stderr, args, cfg)
		},
	},
	cmdFunc{
		name: "all", synopsis: "all",
		describe: "run everything in paper order",
		run: func(ctx context.Context, cfg sweepConfig, _ []string) error {
			var ids []string
			for _, e := range a64fxbench.Experiments() {
				ids = append(ids, e.ID)
			}
			return runSweep(ctx, os.Stdout, os.Stderr, ids, cfg)
		},
	},
	cmdFunc{
		name: "ext", synopsis: "ext [id ...]",
		describe: "ablation experiments beyond the paper",
		run: func(ctx context.Context, cfg sweepConfig, args []string) error {
			ids := args
			if len(ids) == 0 {
				for _, e := range a64fxbench.Extensions() {
					ids = append(ids, e.ID)
				}
			}
			return runSweep(ctx, os.Stdout, os.Stderr, ids, cfg)
		},
	},
	cmdFunc{
		name: "trace", synopsis: "trace <experiment-id>",
		describe: "run one experiment traced and export its event stream (-format, -o)",
		minArgs:  1,
		run: func(ctx context.Context, cfg sweepConfig, args []string) error {
			return traceExperiment(ctx, args[0], cfg)
		},
	},
	cmdFunc{
		name: "links", synopsis: "links <experiment-id>",
		describe: "run one experiment congested and print its link heatmaps (-format, -o)",
		minArgs:  1,
		run: func(ctx context.Context, cfg sweepConfig, args []string) error {
			return linksCmd(ctx, args[0], cfg)
		},
	},
	cmdFunc{
		name: "counters", synopsis: "counters [id ...]",
		describe: "run experiments with the virtual PMU and export counters (-format, -o, -period)",
		run: func(ctx context.Context, cfg sweepConfig, args []string) error {
			return countersCmd(ctx, args, cfg)
		},
	},
	cmdFunc{
		name: "diff", synopsis: "diff <old.json> <new.json>",
		describe: "compare two counter snapshots; non-zero exit on regression (-tol)",
		minArgs:  2,
		run: func(_ context.Context, cfg sweepConfig, args []string) error {
			return diffCmd(os.Stdout, args[0], args[1], cfg)
		},
	},
	cmdFunc{
		name: "enginebench", synopsis: "enginebench [baseline.json]",
		describe: "measure ranks/sec for both engines; gate against a baseline snapshot (-o)",
		run: func(_ context.Context, cfg sweepConfig, args []string) error {
			return enginebenchCmd(cfg, args)
		},
	},
	cmdFunc{
		name: "serve", synopsis: "serve",
		describe: "run the sweep-as-a-service HTTP daemon (-addr, -j, -queue)",
		run: func(ctx context.Context, cfg sweepConfig, _ []string) error {
			return serveCmd(ctx, cfg)
		},
	},
	cmdFunc{
		name: "servebench", synopsis: "servebench [baseline.json]",
		describe: "load-test the serving layer; gate against a baseline snapshot (-o)",
		run: func(_ context.Context, cfg sweepConfig, args []string) error {
			return servebenchCmd(cfg, args)
		},
	},
	cmdFunc{
		name: "micro", synopsis: "micro [system]",
		describe: "model-validation microbenchmarks",
		run: func(_ context.Context, _ sweepConfig, args []string) error {
			name := ""
			if len(args) > 0 {
				name = args[0]
			}
			return microCmd(name)
		},
	},
	cmdFunc{
		name: "profile", synopsis: "profile <benchmark> <system>",
		describe: "per-kernel-class time breakdown",
		minArgs:  2,
		run: func(_ context.Context, _ sweepConfig, args []string) error {
			return profileCmd(args[0], args[1])
		},
	},
	cmdFunc{
		name: "machines", synopsis: "machines list|show|validate|calibrate ...",
		describe: "machine spec registry: list, show, validate spec files, calibrate",
		minArgs:  1,
		run: func(_ context.Context, _ sweepConfig, args []string) error {
			return machinesCmd(args)
		},
	},
	cmdFunc{
		name: "calibrate", synopsis: "calibrate <machine>",
		describe: "refit a machine's efficiency table against its declared anchors",
		minArgs:  1,
		run: func(_ context.Context, _ sweepConfig, args []string) error {
			return calibrateCmd(args[0])
		},
	},
	cmdFunc{
		name: "validate", synopsis: "validate [spec.json|dir ...]",
		describe: "self-check against the paper's values; with args, validate machine specs",
		run: func(_ context.Context, _ sweepConfig, args []string) error {
			if len(args) > 0 {
				return validateSpecPaths(args)
			}
			return validateCmd()
		},
	},
}

// findCommand resolves a dispatch token against the table.
func findCommand(name string) command {
	for _, c := range commands {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "reduce simulated iteration counts for fast runs")
	compare := flag.Bool("compare", false, "show paper references and deltas beside each value")
	format := flag.String("format", "text", "output format: text, chart, json or csv (trace: text, chrome or json)")
	jobs := flag.Int("j", 0, "max concurrent experiments (0 = GOMAXPROCS)")
	failFast := flag.Bool("failfast", false, "cancel remaining experiments after the first failure")
	profile := flag.Bool("profile", false, "print per-job observability summaries after each artifact")
	congestion := flag.Bool("congestion", false, "price multi-node communication through the routed contention model")
	engine := flag.String("engine", "", "simulation engine: goroutine (default) or event (discrete-event, for very large rank counts)")
	outFile := flag.String("o", "", "write trace/links/counters output to FILE instead of stdout")
	period := flag.Duration("period", 0, "counters: virtual-time sampling period (0 = default 100µs)")
	tol := flag.Float64("tol", 0.01, "diff: relative tolerance for time and rate metrics")
	addr := flag.String("addr", "127.0.0.1:7764", "serve: listen address")
	queue := flag.Int("queue", 0, "serve: queued executions before 429 (0 = default 64)")
	debugAddr := flag.String("debug-addr", "", "serve: also listen on ADDR for /debug/pprof/ (off when empty)")
	logLevel := flag.String("log-level", "info", "serve: request-log threshold: debug, info, warn, error or off")
	logFormat := flag.String("log-format", "json", "serve: request-log encoding: json or text")
	specs := flag.String("specs", "", "load machine specs from DIR (default $A64FXBENCH_SPECS)")
	machine := flag.String("machine", "", "target machine for machine-parameterized experiments (default A64FX)")
	model := flag.String("model", "", "compute-phase pricing model: roofline (default) or ecm (memory-hierarchy)")
	flag.Usage = usage
	// Interleaved parsing: each Parse stops at the first non-flag token,
	// so collect positionals one at a time and re-parse the remainder.
	// This lets flags appear after the command and its arguments.
	var pos []string
	rest := os.Args[1:]
	for {
		if err := flag.CommandLine.Parse(rest); err != nil {
			os.Exit(2)
		}
		if flag.NArg() == 0 {
			break
		}
		pos = append(pos, flag.Arg(0))
		rest = flag.Args()[1:]
	}
	if len(pos) == 0 {
		usage()
		os.Exit(2)
	}
	cmd := findCommand(pos[0])
	if cmd == nil {
		fmt.Fprintf(os.Stderr, "a64fxbench: unknown command %q\n\n", pos[0])
		usage()
		os.Exit(2)
	}
	eng, err := a64fxbench.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a64fxbench:", err)
		os.Exit(2)
	}
	mdl, err := a64fxbench.ParseModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a64fxbench:", err)
		os.Exit(2)
	}
	specDir := *specs
	if specDir == "" {
		specDir = os.Getenv("A64FXBENCH_SPECS")
	}
	if err := loadSpecs(specDir); err != nil {
		fmt.Fprintln(os.Stderr, "a64fxbench:", err)
		os.Exit(2)
	}
	cfg := sweepConfig{
		quick: *quick, compare: *compare, format: *format,
		jobs: *jobs, failFast: *failFast,
		profile: *profile, congestion: *congestion, engine: eng, out: *outFile,
		period: *period, tol: *tol, addr: *addr, queue: *queue,
		debugAddr: *debugAddr, logLevel: *logLevel, logFormat: *logFormat,
		machine: *machine, model: string(mdl),
	}
	// Ctrl-C cancels experiments that have not started; running ones
	// finish (the sweep engine documents this), then the partial summary
	// prints.
	ctx, stop := signal.NotifyContext(rootContext(), os.Interrupt)
	defer stop()
	if err := cmd.Run(ctx, cfg, pos[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "a64fxbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `a64fxbench — reproduce "Investigating Applications on the A64FX" (CLUSTER 2020)

usage:
`)
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  a64fxbench [flags] %-28s %s\n", c.Synopsis(), c.Describe())
	}
	fmt.Fprintf(os.Stderr, `
flags (accepted before or after the command):
  -quick     reduce simulated iteration counts (fast smoke runs)
  -compare   show paper-vs-measured deltas beside each value
  -format    run/all/ext: text (default), chart, json or csv
             trace: text (default), chrome (Perfetto) or json (analysis report)
             counters: text (default), json (canonical snapshot) or csv (series)
  -o FILE    trace/links/counters: write output to FILE instead of stdout
  -period D  counters: virtual-time sampling period (0 = default 100µs)
  -tol F     diff: relative tolerance for time and rate metrics (default 0.01)
  -profile   run/all/ext: print per-job observability summaries
  -congestion  price multi-node communication through the routed contention model
  -engine E  simulation engine: goroutine (default) or event (single-threaded
             discrete-event core for very large rank counts; bit-identical results)
  -j N       run up to N experiments concurrently (0 = GOMAXPROCS)
  -failfast  cancel remaining experiments after the first failure
  -addr A    serve: listen address (default 127.0.0.1:7764)
  -queue N   serve: queued executions before 429 (0 = default 64)
  -debug-addr A  serve: also listen on A for /debug/pprof/ (off when empty)
  -log-level L   serve: request-log threshold: debug, info (default), warn,
             error, or off to disable request logging
  -log-format F  serve: request-log encoding: json (default, one object per
             line on stdout) or text
  -specs DIR load machine spec files from DIR into the registry
             (default: the A64FXBENCH_SPECS environment variable)
  -machine M run machine-parameterized experiments (ext-machine) on
             registered machine M (default A64FX)
  -model M   compute-phase pricing model: roofline (default, calibrated) or
             ecm (per-level memory-hierarchy phases; diff two counter
             snapshots to tabulate roofline-vs-ECM prediction deltas)
`)
}

// rootContext is the base context of the process (a seam for tests).
func rootContext() context.Context { return context.Background() }

func list() error {
	for _, e := range a64fxbench.Experiments() {
		fmt.Printf("%-12s %-6s %s\n", e.ID, e.Kind, e.Title)
		fmt.Printf("             %s\n", e.Description)
	}
	fmt.Println("\nextensions (run with `ext`):")
	for _, e := range a64fxbench.Extensions() {
		fmt.Printf("%-12s %-6s %s\n", e.ID, e.Kind, e.Title)
		fmt.Printf("             %s\n", e.Description)
	}
	return nil
}

func sysinfo() error {
	for _, s := range a64fxbench.Systems() {
		fmt.Printf("%s — %s\n", s.ID, s.Description)
		fmt.Printf("  processor:  %s (%s), %.1f GHz, %d×%d cores, %d-bit vectors\n",
			s.Processor, s.Microarch, s.ClockGHz, s.ProcessorsPerNode, s.CoresPerProcessor, s.VectorBits)
		fmt.Printf("  peak:       %.1f GFLOP/s per node\n", s.PeakNodeGFlops())
		fmt.Printf("  memory:     %v per node (%v per core), %v peak bandwidth\n",
			s.MemoryPerNode(), s.MemoryPerCore(), s.Node.PeakBandwidth())
		fmt.Printf("  network:    %s\n", s.NewFabric(s.MaxNodes).Name)
		fmt.Printf("  max nodes:  %d\n\n", s.MaxNodes)
	}
	return nil
}
