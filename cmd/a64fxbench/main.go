// Command a64fxbench reproduces the tables and figures of Jackson et
// al., "Investigating Applications on the A64FX" (IEEE CLUSTER 2020) on
// the simulated systems.
//
// Usage:
//
//	a64fxbench list                 list all experiments
//	a64fxbench sysinfo              print the machine models (Table I)
//	a64fxbench run <id> [...]       run experiments (e.g. table3 fig4)
//	a64fxbench all                  run everything in paper order
//
// Flags:
//
//	-quick      reduce simulated iteration counts (fast smoke runs)
//	-compare    show paper-vs-measured deltas beside each value
//	-j N        run up to N experiments concurrently (default GOMAXPROCS)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"a64fxbench"
)

func main() {
	quick := flag.Bool("quick", false, "reduce simulated iteration counts for fast runs")
	compare := flag.Bool("compare", false, "show paper references and deltas beside each value")
	format := flag.String("format", "text", "output format: text, chart, json or csv")
	jobs := flag.Int("j", 0, "max concurrent experiments (0 = GOMAXPROCS)")
	failFast := flag.Bool("failfast", false, "cancel remaining experiments after the first failure")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := sweepConfig{
		quick: *quick, compare: *compare, format: *format,
		jobs: *jobs, failFast: *failFast,
	}
	// Ctrl-C cancels experiments that have not started; running ones
	// finish (the sweep engine documents this), then the partial summary
	// prints.
	ctx, stop := signal.NotifyContext(rootContext(), os.Interrupt)
	defer stop()
	var err error
	switch args[0] {
	case "list":
		err = list()
	case "sysinfo":
		err = sysinfo()
	case "run":
		if len(args) < 2 {
			err = fmt.Errorf("run needs at least one experiment id")
			break
		}
		err = runSweep(ctx, os.Stdout, os.Stderr, args[1:], cfg)
	case "ext":
		var ids []string
		if len(args) > 1 {
			ids = args[1:]
		} else {
			for _, e := range a64fxbench.Extensions() {
				ids = append(ids, e.ID)
			}
		}
		err = runSweep(ctx, os.Stdout, os.Stderr, ids, cfg)
	case "all":
		var ids []string
		for _, e := range a64fxbench.Experiments() {
			ids = append(ids, e.ID)
		}
		err = runSweep(ctx, os.Stdout, os.Stderr, ids, cfg)
	case "micro":
		name := ""
		if len(args) > 1 {
			name = args[1]
		}
		err = microCmd(name)
	case "profile":
		if len(args) < 3 {
			err = fmt.Errorf("usage: profile <benchmark> <system>")
			break
		}
		err = profileCmd(args[1], args[2])
	case "validate":
		err = validateCmd()
	case "trace":
		name := "A64FX"
		if len(args) > 1 {
			name = args[1]
		}
		err = traceCmd(name, 40)
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "a64fxbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `a64fxbench — reproduce "Investigating Applications on the A64FX" (CLUSTER 2020)

usage:
  a64fxbench [flags] list
  a64fxbench [flags] sysinfo
  a64fxbench [flags] run <experiment-id> [...]
  a64fxbench [flags] all
  a64fxbench [flags] ext [id ...]        ablation experiments beyond the paper
  a64fxbench micro [system]              model-validation microbenchmarks
  a64fxbench profile <benchmark> <sys>   per-kernel-class time breakdown
  a64fxbench trace [system]              virtual-time event timeline demo
  a64fxbench validate                    self-check against the paper's values

flags:
  -quick     reduce simulated iteration counts (fast smoke runs)
  -compare   show paper-vs-measured deltas beside each value
  -format    text (default), chart, json or csv
  -j N       run up to N experiments concurrently (0 = GOMAXPROCS)
  -failfast  cancel remaining experiments after the first failure
`)
}

// rootContext is the base context of the process (a seam for tests).
func rootContext() context.Context { return context.Background() }

func list() error {
	for _, e := range a64fxbench.Experiments() {
		fmt.Printf("%-12s %-6s %s\n", e.ID, e.Kind, e.Title)
		fmt.Printf("             %s\n", e.Description)
	}
	fmt.Println("\nextensions (run with `ext`):")
	for _, e := range a64fxbench.Extensions() {
		fmt.Printf("%-12s %-6s %s\n", e.ID, e.Kind, e.Title)
		fmt.Printf("             %s\n", e.Description)
	}
	return nil
}

func sysinfo() error {
	for _, s := range a64fxbench.Systems() {
		fmt.Printf("%s — %s\n", s.ID, s.Description)
		fmt.Printf("  processor:  %s (%s), %.1f GHz, %d×%d cores, %d-bit vectors\n",
			s.Processor, s.Microarch, s.ClockGHz, s.ProcessorsPerNode, s.CoresPerProcessor, s.VectorBits)
		fmt.Printf("  peak:       %.1f GFLOP/s per node\n", s.PeakNodeGFlops())
		fmt.Printf("  memory:     %v per node (%v per core), %v peak bandwidth\n",
			s.MemoryPerNode(), s.MemoryPerCore(), s.Node.PeakBandwidth())
		fmt.Printf("  network:    %s\n", s.NewFabric(s.MaxNodes).Name)
		fmt.Printf("  max nodes:  %d\n\n", s.MaxNodes)
	}
	return nil
}

