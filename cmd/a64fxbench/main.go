// Command a64fxbench reproduces the tables and figures of Jackson et
// al., "Investigating Applications on the A64FX" (IEEE CLUSTER 2020) on
// the simulated systems.
//
// Usage:
//
//	a64fxbench list                 list all experiments
//	a64fxbench sysinfo              print the machine models (Table I)
//	a64fxbench run <id> [...]       run experiments (e.g. table3 fig4)
//	a64fxbench all                  run everything in paper order
//
// Flags:
//
//	-quick      reduce simulated iteration counts (fast smoke runs)
//	-compare    show paper-vs-measured deltas beside each value
package main

import (
	"flag"
	"fmt"
	"os"

	"a64fxbench"
)

func main() {
	quick := flag.Bool("quick", false, "reduce simulated iteration counts for fast runs")
	compare := flag.Bool("compare", false, "show paper references and deltas beside each value")
	format := flag.String("format", "text", "output format: text, chart, json or csv")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "list":
		err = list()
	case "sysinfo":
		err = sysinfo()
	case "run":
		if len(args) < 2 {
			err = fmt.Errorf("run needs at least one experiment id")
			break
		}
		err = run(args[1:], *quick, *compare, *format)
	case "ext":
		var ids []string
		if len(args) > 1 {
			ids = args[1:]
		} else {
			for _, e := range a64fxbench.Extensions() {
				ids = append(ids, e.ID)
			}
		}
		err = run(ids, *quick, *compare, *format)
	case "all":
		var ids []string
		for _, e := range a64fxbench.Experiments() {
			ids = append(ids, e.ID)
		}
		err = run(ids, *quick, *compare, *format)
	case "micro":
		name := ""
		if len(args) > 1 {
			name = args[1]
		}
		err = microCmd(name)
	case "profile":
		if len(args) < 3 {
			err = fmt.Errorf("usage: profile <benchmark> <system>")
			break
		}
		err = profileCmd(args[1], args[2])
	case "validate":
		err = validateCmd()
	case "trace":
		name := "A64FX"
		if len(args) > 1 {
			name = args[1]
		}
		err = traceCmd(name, 40)
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "a64fxbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `a64fxbench — reproduce "Investigating Applications on the A64FX" (CLUSTER 2020)

usage:
  a64fxbench [flags] list
  a64fxbench [flags] sysinfo
  a64fxbench [flags] run <experiment-id> [...]
  a64fxbench [flags] all
  a64fxbench [flags] ext [id ...]        ablation experiments beyond the paper
  a64fxbench micro [system]              model-validation microbenchmarks
  a64fxbench profile <benchmark> <sys>   per-kernel-class time breakdown
  a64fxbench trace [system]              virtual-time event timeline demo
  a64fxbench validate                    self-check against the paper's values

flags:
  -quick    reduce simulated iteration counts (fast smoke runs)
  -compare  show paper-vs-measured deltas beside each value
  -format   text (default), chart, json or csv
`)
}

func list() error {
	for _, e := range a64fxbench.Experiments() {
		fmt.Printf("%-12s %-6s %s\n", e.ID, e.Kind, e.Title)
		fmt.Printf("             %s\n", e.Description)
	}
	fmt.Println("\nextensions (run with `ext`):")
	for _, e := range a64fxbench.Extensions() {
		fmt.Printf("%-12s %-6s %s\n", e.ID, e.Kind, e.Title)
		fmt.Printf("             %s\n", e.Description)
	}
	return nil
}

func sysinfo() error {
	for _, s := range a64fxbench.Systems() {
		fmt.Printf("%s — %s\n", s.ID, s.Description)
		fmt.Printf("  processor:  %s (%s), %.1f GHz, %d×%d cores, %d-bit vectors\n",
			s.Processor, s.Microarch, s.ClockGHz, s.ProcessorsPerNode, s.CoresPerProcessor, s.VectorBits)
		fmt.Printf("  peak:       %.1f GFLOP/s per node\n", s.PeakNodeGFlops())
		fmt.Printf("  memory:     %v per node (%v per core), %v peak bandwidth\n",
			s.MemoryPerNode(), s.MemoryPerCore(), s.Node.PeakBandwidth())
		fmt.Printf("  network:    %s\n", s.NewFabric(s.MaxNodes).Name)
		fmt.Printf("  max nodes:  %d\n\n", s.MaxNodes)
	}
	return nil
}

func run(ids []string, quick, compare bool, format string) error {
	for _, id := range ids {
		e, err := a64fxbench.GetExperiment(id)
		if err != nil {
			if e2, err2 := a64fxbench.GetExtension(id); err2 == nil {
				e = e2
			} else {
				return err
			}
		}
		art, err := e.Run(a64fxbench.Options{Quick: quick})
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch format {
		case "json":
			if err := art.WriteJSON(os.Stdout); err != nil {
				return err
			}
		case "csv":
			if err := art.WriteCSV(os.Stdout); err != nil {
				return err
			}
		case "chart":
			fmt.Println(art.RenderChart())
		case "text", "":
			if compare {
				fmt.Println(art.RenderComparison())
			} else {
				fmt.Println(art.Render())
			}
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	return nil
}
