package main

import (
	"io"
	"os"
)

// withOutput runs fn against the -o file (created fresh) or stdout when
// no file was given. The file is closed via defer — so it is released
// even if fn panics — and a write error from fn wins over the close
// error, but a failed close on an otherwise clean run is still reported
// (a buffered write that never hit the disk is a real failure). Every
// exporting command (trace, links, counters, enginebench, servebench)
// funnels through this one helper.
func withOutput(cfg sweepConfig, fn func(w io.Writer) error) (err error) {
	if cfg.out == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return fn(f)
}
