package main

import (
	"io"
	"os"
)

// withOutput runs fn against the -o file (created fresh) or stdout when
// no file was given. The file is closed after fn; a write error wins
// over the close error. Every exporting command (trace, links,
// counters) funnels through this one helper.
func withOutput(cfg sweepConfig, fn func(w io.Writer) error) error {
	if cfg.out == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
