package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"a64fxbench/internal/serve"
)

// TestServeBytesMatchCLI is the byte-identity gate of the unified
// request API: for the same core.Request, the bytes the serve daemon's
// /v1/run returns must be identical to what the CLI `run` command
// writes to stdout. Both paths are exercised end to end — flags →
// Request → executor on one side, JSON body → Request → executor on
// the other.
func TestServeBytesMatchCLI(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		cfg     sweepConfig
		reqBody string
	}{
		{
			"json",
			sweepConfig{quick: true, format: "json"},
			`{"ids":["table1"],"quick":true,"format":"json"}`,
		},
		{
			"text compare",
			sweepConfig{quick: true, format: "text", compare: true},
			`{"ids":["table1"],"quick":true,"format":"text","compare":true}`,
		},
		{
			"csv",
			sweepConfig{quick: true, format: "csv"},
			`{"ids":["table5"],"quick":true,"format":"csv"}`,
		},
	}
	srv := serve.New(serve.Config{})
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			req, err := serveTestRequestIDs(tc.reqBody)
			if err != nil {
				t.Fatal(err)
			}
			var cli bytes.Buffer
			if err := runSweep(context.Background(), &cli, io.Discard, req, tc.cfg); err != nil {
				t.Fatalf("CLI run: %v", err)
			}
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec,
				httptest.NewRequest("POST", "/v1/run", strings.NewReader(tc.reqBody)))
			if rec.Code != 200 {
				t.Fatalf("/v1/run: %d %s", rec.Code, rec.Body.String())
			}
			if !bytes.Equal(cli.Bytes(), rec.Body.Bytes()) {
				t.Fatalf("CLI and /v1/run bytes diverge for the same request:\nCLI:\n%s\nserve:\n%s",
					cli.String(), rec.Body.String())
			}
		})
	}
}

// serveTestRequestIDs pulls the ids out of a test-case JSON body so the
// CLI side runs exactly the same experiments.
func serveTestRequestIDs(body string) ([]string, error) {
	var req struct {
		IDs []string `json:"ids"`
	}
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		return nil, fmt.Errorf("test body: %w", err)
	}
	return req.IDs, nil
}
