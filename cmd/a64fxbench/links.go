package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"a64fxbench/internal/core"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sweep"
)

// linksCmd runs one experiment with congestion-aware network pricing and
// renders the per-link contention heatmap of every simulated job:
// -format=text prints sparkline heatmaps, -format=json the structured
// report. -o redirects to a file. Experiments whose jobs are all
// single-node produce no contended links and say so.
func linksCmd(ctx context.Context, id string, cfg sweepConfig) error {
	return withOutput(cfg, func(w io.Writer) error {
		return writeLinks(ctx, w, id, cfg)
	})
}

// linkReport pairs one job's identity with its heatmap for JSON output.
type linkReport struct {
	Label string           `json:"label"`
	Ranks int              `json:"ranks"`
	Nodes int              `json:"nodes"`
	Links *obs.LinkHeatmap `json:"links"`
}

// writeLinks executes the congested traced run and renders heatmaps to w.
func writeLinks(ctx context.Context, w io.Writer, id string, cfg sweepConfig) error {
	switch cfg.format {
	case "text", "", "json":
	default:
		return fmt.Errorf("links: unknown format %q (want text or json)", cfg.format)
	}
	mem := &simmpi.MemorySink{}
	eng := sweep.New(1)
	eng.SinkFor = func(string) simmpi.TraceSink { return mem }
	res := eng.Run(ctx, []string{id}, core.Options{Quick: cfg.quick, Congestion: true, Engine: cfg.engine})[0]
	if res.Err != nil {
		return res.Err
	}
	jobs := obs.SplitJobs(mem.Events)
	if cfg.format == "json" {
		reports := make([]linkReport, 0, len(jobs))
		for _, jt := range jobs {
			reports = append(reports, linkReport{
				Label: jt.Label, Ranks: jt.NumRanks(), Nodes: jt.NumNodes(),
				Links: obs.BuildLinkHeatmap(jt),
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	contended := 0
	for _, jt := range jobs {
		hm := obs.BuildLinkHeatmap(jt)
		if hm == nil {
			continue
		}
		contended++
		if _, err := fmt.Fprintf(w, "=== %s: %d ranks on %d nodes ===\n",
			jt.Label, jt.NumRanks(), jt.NumNodes()); err != nil {
			return err
		}
		if err := hm.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	if contended == 0 {
		_, err := fmt.Fprintf(w, "links %s: no contended links (%d simulated job(s), all single-node or untraced)\n",
			id, len(jobs))
		return err
	}
	return nil
}
