package main

import (
	"context"
	"io"

	"a64fxbench/internal/serve"
)

// linksCmd runs one experiment with congestion-aware network pricing and
// renders the per-link contention heatmap of every simulated job:
// -format=text prints sparkline heatmaps, -format=json the structured
// report. -o redirects to a file. Experiments whose jobs are all
// single-node produce no contended links and say so. The flags become a
// core.Request and run through the same executor the serve daemon's
// /v1/links uses.
func linksCmd(ctx context.Context, id string, cfg sweepConfig) error {
	req, err := cfg.request([]string{id})
	if err != nil {
		return err
	}
	if err := serve.CheckFormat("links", req.Format); err != nil {
		return err
	}
	return withOutput(cfg, func(w io.Writer) error {
		return serve.WriteLinks(ctx, w, req)
	})
}
