package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"a64fxbench/internal/serve"
)

// servebench scenario constants: pinned so snapshots taken on different
// days are comparable. 1000 fully-concurrent identical cached queries
// is the acceptance floor of the serving layer.
const (
	serveBenchRequests = 1000
	serveBenchBody     = `{"ids":["table1"],"quick":true,"format":"json"}`
	serveBenchEndpoint = "/v1/run"
	// serveBenchP99Budget is the absolute p99 latency budget in
	// milliseconds written into every snapshot. Cached responses are a
	// lock, a map lookup and a memcpy, so 250ms leaves two orders of
	// magnitude of headroom for slow CI machines while still catching a
	// serving-path catastrophe (a cache miss storm, lock convoy, or
	// accidental re-execution).
	serveBenchP99Budget = 250.0
)

// serveBenchSnapshot is the BENCH_serve.json schema. The regression
// gates are machine-independent: non-429 errors must be zero, the cache
// hit ratio must not fall below the baseline's (−0.01 slack), and p99
// must stay under the absolute budget. Throughput is informational —
// it tracks the host machine.
type serveBenchSnapshot struct {
	Scenario      string  `json:"scenario"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	Non429Errors  int     `json:"non429_errors"`
	Errors429     int     `json:"errors_429"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	P99BudgetMS   float64 `json:"p99_budget_ms"`
}

// servebenchCmd load-tests the serving layer in-process: it warms the
// response cache with one execution of the pinned request, then fires
// 1000 concurrent identical queries at the handler and measures
// latency, errors and the cache hit ratio. With a baseline snapshot
// argument it becomes the CI regression gate. -o writes the new
// snapshot (the file CI uploads and, when re-baselining, commits).
func servebenchCmd(cfg sweepConfig, args []string) error {
	srv := serve.New(serve.Config{Workers: cfg.jobs})
	h := srv.Handler()

	// Warm: the one real execution; everything after is a cache hit.
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest("POST", serveBenchEndpoint, strings.NewReader(serveBenchBody)))
	if warm.Code != 200 {
		return fmt.Errorf("servebench: warm-up request failed: %d %s", warm.Code, warm.Body.String())
	}
	wantBody := warm.Body.String()

	type outcome struct {
		code    int
		latency time.Duration
		match   bool
	}
	outcomes := make([]outcome, serveBenchRequests)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range outcomes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(rec, httptest.NewRequest("POST", serveBenchEndpoint, strings.NewReader(serveBenchBody)))
			outcomes[i] = outcome{
				code:    rec.Code,
				latency: time.Since(t0),
				match:   rec.Body.String() == wantBody,
			}
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)

	snap := serveBenchSnapshot{
		Scenario: fmt.Sprintf("POST %s %s, cached, %d concurrent",
			serveBenchEndpoint, serveBenchBody, serveBenchRequests),
		Requests:    serveBenchRequests,
		Concurrency: serveBenchRequests,
		P99BudgetMS: serveBenchP99Budget,
	}
	lats := make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		switch {
		case o.code == 429:
			snap.Errors429++
		case o.code != 200 || !o.match:
			snap.Non429Errors++
		}
		lats = append(lats, o.latency.Seconds()*1000)
	}
	sort.Float64s(lats)
	snap.P50MS = round2(percentile(lats, 0.50))
	snap.P99MS = round2(percentile(lats, 0.99))
	snap.ThroughputRPS = math.Round(float64(serveBenchRequests) / wall.Seconds())
	snap.CacheHitRatio = math.Round(srv.Metrics().CacheHitRatio()*1e4) / 1e4

	if err := withOutput(cfg, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "servebench: %d requests, %d concurrent: %d non-429 errors, %d×429, hit ratio %.4f, %.0f req/s, p50 %.2fms, p99 %.2fms (budget %.0fms)\n",
		snap.Requests, snap.Concurrency, snap.Non429Errors, snap.Errors429,
		snap.CacheHitRatio, snap.ThroughputRPS, snap.P50MS, snap.P99MS, snap.P99BudgetMS)

	// Absolute gates, baseline or not.
	if snap.Non429Errors > 0 {
		return fmt.Errorf("servebench: %d non-429 errors (want 0)", snap.Non429Errors)
	}
	if snap.P99MS > snap.P99BudgetMS {
		return fmt.Errorf("servebench: p99 %.2fms over the %.0fms budget", snap.P99MS, snap.P99BudgetMS)
	}
	if len(args) == 0 {
		return nil
	}
	base, err := loadServeBaseline(args[0])
	if err != nil {
		return err
	}
	if base.Scenario != snap.Scenario {
		return fmt.Errorf("servebench: baseline scenario %q does not match %q; re-baseline with -o %s",
			base.Scenario, snap.Scenario, args[0])
	}
	if snap.CacheHitRatio < base.CacheHitRatio-0.01 {
		return fmt.Errorf("servebench: cache hit ratio regressed to %.4f, baseline %.4f",
			snap.CacheHitRatio, base.CacheHitRatio)
	}
	if snap.P99MS > base.P99BudgetMS {
		return fmt.Errorf("servebench: p99 %.2fms over the baseline budget %.0fms", snap.P99MS, base.P99BudgetMS)
	}
	fmt.Fprintf(os.Stderr, "servebench: within baseline (hit ratio %.4f ≥ %.4f, p99 %.2fms ≤ %.0fms)\n",
		snap.CacheHitRatio, base.CacheHitRatio-0.01, snap.P99MS, base.P99BudgetMS)
	return nil
}

func loadServeBaseline(path string) (serveBenchSnapshot, error) {
	var s serveBenchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("servebench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("servebench: parsing baseline %s: %w", path, err)
	}
	if s.Requests <= 0 {
		return s, fmt.Errorf("servebench: baseline %s has no requests field", path)
	}
	return s, nil
}

// percentile returns the p-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// round2 rounds to two decimals for stable snapshots.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
