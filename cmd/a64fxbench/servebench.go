package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"a64fxbench/internal/serve"
)

// servebench scenario constants: pinned so snapshots taken on different
// days are comparable. 1000 fully-concurrent identical cached queries
// is the acceptance floor of the serving layer.
const (
	serveBenchRequests = 1000
	serveBenchBody     = `{"ids":["table1"],"quick":true,"format":"json"}`
	serveBenchEndpoint = "/v1/run"
	// serveBenchP99Budget is the absolute p99 latency budget in
	// milliseconds written into every snapshot. Cached responses are a
	// lock, a map lookup and a memcpy, so 250ms leaves two orders of
	// magnitude of headroom for slow CI machines while still catching a
	// serving-path catastrophe (a cache miss storm, lock convoy, or
	// accidental re-execution).
	serveBenchP99Budget = 250.0
	// serveBenchSpanOverheadBudget bounds how much the span layer may
	// add to the cached-path p50, in milliseconds. A traced cache hit
	// costs a trace allocation, a handful of spans, one tree snapshot
	// and a recorder observe — single-digit microseconds — so 5ms is
	// pure catastrophe headroom (an accidental sync point or per-span
	// allocation storm), not a performance target.
	serveBenchSpanOverheadBudget = 5.0
)

// stageQuantiles is one stage's latency summary in the snapshot.
type stageQuantiles struct {
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// serveBenchSnapshot is the BENCH_serve.json schema. The regression
// gates are machine-independent: non-429 errors must be zero, the cache
// hit ratio must not fall below the baseline's (−0.01 slack), p99 must
// stay under the absolute budget, and the span layer's p50 overhead
// under its own budget. Throughput and the per-stage quantiles are
// informational — they track the host machine.
type serveBenchSnapshot struct {
	Scenario      string  `json:"scenario"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	Non429Errors  int     `json:"non429_errors"`
	Errors429     int     `json:"errors_429"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	P99BudgetMS   float64 `json:"p99_budget_ms"`
	// Stages summarizes the span-derived per-stage histograms after the
	// storm (cache hits exercise decode/cache-lookup/write; the warm-up
	// contributes the execution stages).
	Stages map[string]stageQuantiles `json:"stages,omitempty"`
	// SpansOverheadP50MS is the storm-p50 delta between a telemetry-on
	// and a telemetry-off server (negative values mean measurement
	// noise exceeded the overhead).
	SpansOverheadP50MS    float64 `json:"spans_overhead_p50_ms"`
	SpansOverheadBudgetMS float64 `json:"spans_overhead_budget_ms"`
}

// stormOutcome aggregates one concurrent storm against a handler.
type stormOutcome struct {
	latsMS []float64 // sorted, milliseconds
	non429 int
	err429 int
	wall   time.Duration
}

// runStorm fires serveBenchRequests concurrent pinned requests at h and
// collects latencies and error counts. wantBody is the expected cached
// response body.
func runStorm(h http.Handler, wantBody string) stormOutcome {
	type outcome struct {
		code    int
		latency time.Duration
		match   bool
	}
	outcomes := make([]outcome, serveBenchRequests)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range outcomes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(rec, httptest.NewRequest("POST", serveBenchEndpoint, strings.NewReader(serveBenchBody)))
			outcomes[i] = outcome{
				code:    rec.Code,
				latency: time.Since(t0),
				match:   rec.Body.String() == wantBody,
			}
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()

	var out stormOutcome
	out.wall = time.Since(t0)
	out.latsMS = make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		switch {
		case o.code == 429:
			out.err429++
		case o.code != 200 || !o.match:
			out.non429++
		}
		out.latsMS = append(out.latsMS, o.latency.Seconds()*1000)
	}
	sort.Float64s(out.latsMS)
	return out
}

// warmServer executes the pinned request once so everything after is a
// cache hit, and returns the expected body.
func warmServer(h http.Handler) (string, error) {
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest("POST", serveBenchEndpoint, strings.NewReader(serveBenchBody)))
	if warm.Code != 200 {
		return "", fmt.Errorf("servebench: warm-up request failed: %d %s", warm.Code, warm.Body.String())
	}
	return warm.Body.String(), nil
}

// servebenchCmd load-tests the serving layer in-process: it warms the
// response cache with one execution of the pinned request, then fires
// 1000 concurrent identical queries at the handler and measures
// latency, errors, the cache hit ratio and the per-stage latency
// quantiles from span telemetry. A second storm against a telemetry-off
// server prices the span layer itself (spans_overhead_p50_ms). With a
// baseline snapshot argument it becomes the CI regression gate. -o
// writes the new snapshot (the file CI uploads and, when re-baselining,
// commits).
func servebenchCmd(cfg sweepConfig, args []string) error {
	srv := serve.New(serve.Config{Workers: cfg.jobs})
	h := srv.Handler()
	wantBody, err := warmServer(h)
	if err != nil {
		return err
	}
	storm := runStorm(h, wantBody)

	snap := serveBenchSnapshot{
		Scenario: fmt.Sprintf("POST %s %s, cached, %d concurrent",
			serveBenchEndpoint, serveBenchBody, serveBenchRequests),
		Requests:              serveBenchRequests,
		Concurrency:           serveBenchRequests,
		Non429Errors:          storm.non429,
		Errors429:             storm.err429,
		P99BudgetMS:           serveBenchP99Budget,
		SpansOverheadBudgetMS: serveBenchSpanOverheadBudget,
	}
	snap.P50MS = round2(percentile(storm.latsMS, 0.50))
	snap.P99MS = round2(percentile(storm.latsMS, 0.99))
	snap.ThroughputRPS = math.Round(float64(serveBenchRequests) / storm.wall.Seconds())
	snap.CacheHitRatio = math.Round(srv.Metrics().CacheHitRatio()*1e4) / 1e4

	snap.Stages = map[string]stageQuantiles{}
	for _, stage := range []string{"decode", "cache-lookup", "singleflight-wait", "admission", "engine-execute", "render", "write"} {
		if srv.Metrics().StageCount(stage) == 0 {
			continue
		}
		qs := srv.Metrics().StageQuantiles(stage, 0.50, 0.90, 0.99)
		snap.Stages[stage] = stageQuantiles{
			P50MS: round2(qs[0] * 1000), P90MS: round2(qs[1] * 1000), P99MS: round2(qs[2] * 1000),
		}
	}

	// Price the span layer: same storm, telemetry off. The overhead
	// gate compares cached-path p50s, the quantile least exposed to
	// scheduler noise.
	off := serve.New(serve.Config{Workers: cfg.jobs, DisableTelemetry: true})
	offBody, err := warmServer(off.Handler())
	if err != nil {
		return err
	}
	offStorm := runStorm(off.Handler(), offBody)
	snap.SpansOverheadP50MS = round2(snap.P50MS - round2(percentile(offStorm.latsMS, 0.50)))

	if err := withOutput(cfg, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "servebench: %d requests, %d concurrent: %d non-429 errors, %d×429, hit ratio %.4f, %.0f req/s, p50 %.2fms, p99 %.2fms (budget %.0fms), span overhead p50 %+.2fms (budget %.0fms)\n",
		snap.Requests, snap.Concurrency, snap.Non429Errors, snap.Errors429,
		snap.CacheHitRatio, snap.ThroughputRPS, snap.P50MS, snap.P99MS, snap.P99BudgetMS,
		snap.SpansOverheadP50MS, snap.SpansOverheadBudgetMS)

	// Absolute gates, baseline or not.
	if snap.Non429Errors > 0 {
		return fmt.Errorf("servebench: %d non-429 errors (want 0)", snap.Non429Errors)
	}
	if snap.P99MS > snap.P99BudgetMS {
		return fmt.Errorf("servebench: p99 %.2fms over the %.0fms budget", snap.P99MS, snap.P99BudgetMS)
	}
	if snap.SpansOverheadP50MS > snap.SpansOverheadBudgetMS {
		return fmt.Errorf("servebench: span-layer p50 overhead %.2fms over the %.0fms budget",
			snap.SpansOverheadP50MS, snap.SpansOverheadBudgetMS)
	}
	if len(args) == 0 {
		return nil
	}
	base, err := loadServeBaseline(args[0])
	if err != nil {
		return err
	}
	if base.Scenario != snap.Scenario {
		return fmt.Errorf("servebench: baseline scenario %q does not match %q; re-baseline with -o %s",
			base.Scenario, snap.Scenario, args[0])
	}
	if snap.CacheHitRatio < base.CacheHitRatio-0.01 {
		return fmt.Errorf("servebench: cache hit ratio regressed to %.4f, baseline %.4f",
			snap.CacheHitRatio, base.CacheHitRatio)
	}
	if snap.P99MS > base.P99BudgetMS {
		return fmt.Errorf("servebench: p99 %.2fms over the baseline budget %.0fms", snap.P99MS, base.P99BudgetMS)
	}
	if base.SpansOverheadBudgetMS > 0 && snap.SpansOverheadP50MS > base.SpansOverheadBudgetMS {
		return fmt.Errorf("servebench: span-layer p50 overhead %.2fms over the baseline budget %.0fms",
			snap.SpansOverheadP50MS, base.SpansOverheadBudgetMS)
	}
	fmt.Fprintf(os.Stderr, "servebench: within baseline (hit ratio %.4f ≥ %.4f, p99 %.2fms ≤ %.0fms)\n",
		snap.CacheHitRatio, base.CacheHitRatio-0.01, snap.P99MS, base.P99BudgetMS)
	return nil
}

func loadServeBaseline(path string) (serveBenchSnapshot, error) {
	var s serveBenchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("servebench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("servebench: parsing baseline %s: %w", path, err)
	}
	if s.Requests <= 0 {
		return s, fmt.Errorf("servebench: baseline %s has no requests field", path)
	}
	return s, nil
}

// percentile returns the p-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// round2 rounds to two decimals for stable snapshots.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
