package a64fxbench_test

import (
	"fmt"

	"a64fxbench"
)

// Example enumerates the machine models of the study.
func Example() {
	for _, id := range a64fxbench.SystemIDs() {
		sys, err := a64fxbench.GetSystem(id)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d cores/node, %d-bit vectors\n",
			sys.ID, sys.CoresPerNode(), sys.VectorBits)
	}
	// Output:
	// A64FX: 48 cores/node, 512-bit vectors
	// ARCHER: 24 cores/node, 256-bit vectors
	// Cirrus: 36 cores/node, 256-bit vectors
	// EPCC NGIO: 48 cores/node, 512-bit vectors
	// Fulhame: 64 cores/node, 128-bit vectors
}

// ExampleExperiments lists the paper's reproducible artifacts.
func ExampleExperiments() {
	fmt.Println(len(a64fxbench.Experiments()), "experiments")
	for _, e := range a64fxbench.Experiments()[:3] {
		fmt.Println(e.ID, "—", e.Title)
	}
	// Output:
	// 15 experiments
	// table1 — Compute node specifications
	// table2 — Compilers, compiler flags and libraries
	// table3 — Single node HPCG performance
}

// ExampleRunHPCG runs the headline benchmark on one simulated A64FX node.
func ExampleRunHPCG() {
	sys, err := a64fxbench.GetSystem(a64fxbench.A64FX)
	if err != nil {
		panic(err)
	}
	res, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{
		System: sys, Nodes: 1, Iterations: 5,
	})
	if err != nil {
		panic(err)
	}
	// The simulation is deterministic, so the rating is stable; the
	// paper's measured value is 38.26 GFLOP/s.
	fmt.Printf("%d ranks, %.0f GFLOP/s\n", res.Procs, res.GFLOPs)
	// Output:
	// 48 ranks, 38 GFLOP/s
}

// ExampleRunNekbone shows the fast-math effect of the paper's Table VI.
func ExampleRunNekbone() {
	sys, _ := a64fxbench.GetSystem(a64fxbench.A64FX)
	plain, _ := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{
		System: sys, Nodes: 1, Iterations: 10,
	})
	fast, _ := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{
		System: sys, Nodes: 1, Iterations: 10, FastMath: true,
	})
	fmt.Printf("-Kfast speedup: %.1fx\n", fast.GFLOPs/plain.GFLOPs)
	// Output:
	// -Kfast speedup: 1.8x
}

// ExampleMinikabFitsMemory shows the Figure 1 memory ceiling.
func ExampleMinikabFitsMemory() {
	sys, _ := a64fxbench.GetSystem(a64fxbench.A64FX)
	full := a64fxbench.MinikabConfig{System: sys, Nodes: 2, RanksPerNode: 48}
	hybrid := a64fxbench.MinikabConfig{System: sys, Nodes: 2, RanksPerNode: 4, ThreadsPerRank: 12}
	fmt.Println("96 plain-MPI ranks fit:", a64fxbench.MinikabFitsMemory(full))
	fmt.Println("4×12 hybrid fits:     ", a64fxbench.MinikabFitsMemory(hybrid))
	// Output:
	// 96 plain-MPI ranks fit: false
	// 4×12 hybrid fits:      true
}

// ExampleGetExperiment regenerates a full artifact of the paper.
func ExampleGetExperiment() {
	exp, err := a64fxbench.GetExperiment("table8")
	if err != nil {
		panic(err)
	}
	art, err := exp.Run(a64fxbench.Options{})
	if err != nil {
		panic(err)
	}
	worst, cells := art.MaxAbsDeviation()
	fmt.Printf("%s: %d referenced cells, worst deviation %.0f%%\n", art.ID, cells, worst*100)
	// Output:
	// table8: 5 referenced cells, worst deviation 0%
}
