module a64fxbench

go 1.22
