// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact on
// the simulated systems (Quick mode — the steady-state rates and shapes
// are unchanged) and reports the headline quantity as a custom metric so
// `go test -bench` output can be read against the paper directly.
package a64fxbench_test

import (
	"testing"

	"a64fxbench"
)

// runExperiment executes one registered experiment per benchmark
// iteration and returns the last artifact for metric extraction.
func runExperiment(b *testing.B, id string) *a64fxbench.Artifact {
	b.Helper()
	exp, err := a64fxbench.GetExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	var art *a64fxbench.Artifact
	for i := 0; i < b.N; i++ {
		art, err = exp.Run(a64fxbench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return art
}

// reportDeviation publishes the worst paper-vs-measured deviation of the
// artifact as a metric (percent).
func reportDeviation(b *testing.B, art *a64fxbench.Artifact) {
	b.Helper()
	worst, cells := art.MaxAbsDeviation()
	if cells > 0 {
		b.ReportMetric(worst*100, "worst-%-vs-paper")
	}
}

// cellValue extracts a measured value by row label and column index.
func cellValue(b *testing.B, art *a64fxbench.Artifact, rowLabel string, col int) float64 {
	b.Helper()
	for i, l := range art.RowLabels {
		if l == rowLabel {
			return art.Cells[i][col].Value
		}
	}
	b.Fatalf("row %q not found in %s", rowLabel, art.ID)
	return 0
}

func BenchmarkTableI(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkTableIII(b *testing.B) {
	art := runExperiment(b, "table3")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 0), "A64FX-GFLOPs")
}

func BenchmarkTableIV(b *testing.B) {
	art := runExperiment(b, "table4")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 3), "A64FX-8node-GFLOPs")
}

func BenchmarkTableV(b *testing.B) {
	art := runExperiment(b, "table5")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 0), "A64FX-seconds")
}

func BenchmarkFigure1(b *testing.B) {
	art := runExperiment(b, "fig1")
	b.ReportMetric(cellValue(b, art, "4 ranks × 12 threads", 1), "best-config-seconds")
}

func BenchmarkFigure2(b *testing.B) {
	art := runExperiment(b, "fig2")
	b.ReportMetric(cellValue(b, art, "A64FX 8 nodes", 1), "A64FX-8node-seconds")
}

func BenchmarkTableVI(b *testing.B) {
	art := runExperiment(b, "table6")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 3), "A64FX-fastmath-GFLOPs")
}

func BenchmarkFigure3(b *testing.B) {
	art := runExperiment(b, "fig3")
	b.ReportMetric(cellValue(b, art, "A64FX", 0), "A64FX-1core-GFLOPs")
}

func BenchmarkTableVII(b *testing.B) {
	art := runExperiment(b, "table7")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 3), "A64FX-16node-PE")
}

func BenchmarkTableVIII(b *testing.B) {
	art := runExperiment(b, "table8")
	reportDeviation(b, art)
}

func BenchmarkFigure4(b *testing.B) {
	art := runExperiment(b, "fig4")
	b.ReportMetric(cellValue(b, art, "Fulhame", 4), "Fulhame-16node-seconds")
	b.ReportMetric(cellValue(b, art, "A64FX", 4), "A64FX-16node-seconds")
}

func BenchmarkTableIX(b *testing.B) {
	art := runExperiment(b, "table9")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 1), "A64FX-SCF-cycles-per-s")
}

func BenchmarkFigure5(b *testing.B) {
	art := runExperiment(b, "fig5")
	b.ReportMetric(cellValue(b, art, "EPCC NGIO", 8), "NGIO-48core-SCF-cps")
}

func BenchmarkTableX(b *testing.B) {
	art := runExperiment(b, "table10")
	reportDeviation(b, art)
	b.ReportMetric(cellValue(b, art, "A64FX", 0), "A64FX-1node-seconds")
}
