// Package a64fxbench is the public API of the A64FX benchmarking-study
// reproduction: a deterministic performance-simulation framework that
// re-creates the measurement campaign of Jackson et al., "Investigating
// Applications on the A64FX" (IEEE CLUSTER 2020), entirely in Go.
//
// The package exposes three layers:
//
//   - Machine models: the five benchmarked systems (A64FX, ARCHER,
//     Cirrus, EPCC NGIO, Fulhame) with their Table I hardware
//     capabilities, interconnects, and calibrated kernel efficiencies.
//     See Systems and GetSystem.
//
//   - Benchmarks: runnable, metered versions of HPCG, minikab, Nekbone,
//     COSA, CASTEP and OpenSBLI. Each has a Config describing the
//     paper's setup and returns achieved rates or runtimes on the
//     simulated machine. See RunHPCG and friends.
//
//   - Experiments: every table and figure of the paper's evaluation as a
//     one-call artifact with paper-vs-measured comparison. See
//     Experiments, GetExperiment.
//
// A minimal session:
//
//	sys, _ := a64fxbench.GetSystem(a64fxbench.A64FX)
//	res, _ := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: sys, Nodes: 1})
//	fmt.Printf("HPCG: %.2f GFLOP/s\n", res.GFLOPs)
//
//	exp, _ := a64fxbench.GetExperiment("table3")
//	art, _ := exp.Run(a64fxbench.Options{Quick: true})
//	fmt.Println(art.RenderComparison())
package a64fxbench

import (
	"io"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/castep"
	"a64fxbench/internal/core"
	"a64fxbench/internal/cosa"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/micro"
	"a64fxbench/internal/minikab"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/opensbli"
	"a64fxbench/internal/paper"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/serve"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/spec"
	"a64fxbench/internal/units"
)

// Citation identifies the reproduced paper.
type Citation = paper.Citation

// PaperSource returns the full citation of the reproduced study.
func PaperSource() Citation { return paper.Source() }

// Quantity types used throughout the machine models.
type (
	// Bytes is a byte count (memory sizes, message sizes).
	Bytes = units.Bytes
	// ByteRate is a bandwidth in bytes per second.
	ByteRate = units.ByteRate
	// FlopRate is a floating-point rate in FLOP per second.
	FlopRate = units.FlopRate
)

// Common quantity constants.
const (
	MiB       = units.MiB
	GiB       = units.GiB
	GBPerSec  = units.GBPerSec
	TBPerSec  = units.TBPerSec
	GFlopsPer = units.GFlopPerSec
)

// SystemID names one of the five benchmarked systems.
type SystemID = arch.ID

// The five systems of the study.
const (
	A64FX   = arch.A64FX
	ARCHER  = arch.ARCHER
	Cirrus  = arch.Cirrus
	NGIO    = arch.NGIO
	Fulhame = arch.Fulhame
)

// System is a complete machine description: node capability, node count
// and interconnect.
type System = arch.System

// Systems returns every modelled system in the paper's column order.
func Systems() []*System { return arch.All() }

// GetSystem looks a system up by ID.
func GetSystem(id SystemID) (*System, error) { return arch.Get(id) }

// SystemIDs lists the five IDs in the paper's order.
func SystemIDs() []SystemID { return arch.IDs() }

// DeriveSystem registers a new system modelled on an existing one,
// inheriting its calibration; mutate may adjust any hardware field. Use
// it for what-if studies (e.g. an A64FX with DDR4 in place of HBM2).
func DeriveSystem(base SystemID, newID SystemID, mutate func(*System)) (*System, error) {
	return arch.Derive(base, newID, mutate)
}

// Machine specs: every system is data — a JSON descriptor carrying the
// Table-I hardware capability, the calibrated per-kernel efficiency
// table and the anchor measurements the calibration protocol fits
// against. The five embedded specs are the source of the stock systems;
// user specs (files or JSON by value) register through the same path.
type (
	// MachineSpec is the JSON shape of a machine descriptor; quantity
	// fields are unit strings ("210 GB/s", "8 GiB", "300 ns").
	MachineSpec = spec.Spec
	// Machine is a compiled, validated spec ready to register.
	Machine = spec.Machine
	// SpecFieldError is a rejected spec naming the offending JSON field
	// path and the valid set.
	SpecFieldError = spec.FieldError
	// Calibration is the result of refitting a machine's efficiency
	// table (two free parameters) against its declared anchors.
	Calibration = micro.Calibration
)

// ParseMachineSpec strictly decodes a machine spec: unknown fields, bad
// units and missing anchors are errors naming the field path.
func ParseMachineSpec(data []byte) (*MachineSpec, error) { return spec.Parse(data) }

// Machines lists every registered machine (the embedded Table-I five
// plus any loaded or inline-registered specs) in registration order.
func Machines() []*Machine { return spec.Machines() }

// GetMachine looks a registered machine up by name.
func GetMachine(name string) (*Machine, bool) { return spec.Get(name) }

// RegisterMachineSpec resolves (overlays included), compiles and
// registers a machine spec, making it a runnable System. Registration
// is idempotent by content digest; a same-name spec with different
// content is an error.
func RegisterMachineSpec(s *MachineSpec) (*System, error) {
	m, err := spec.Default.AddSpec(s, "api")
	if err != nil {
		return nil, err
	}
	return arch.RegisterMachine(m)
}

// LoadMachineSpecs loads every *.json machine spec in dir (overlays may
// reference machines from other files in the same directory) and
// registers each as a runnable System — the library form of the CLI's
// -specs flag.
func LoadMachineSpecs(dir string) ([]*Machine, error) {
	machines, err := spec.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, m := range machines {
		if _, err := arch.RegisterMachine(m); err != nil {
			return nil, err
		}
	}
	return machines, nil
}

// Calibrate refits a machine's efficiency table against its declared
// anchor measurements, reducing the fit to two free parameters (a
// memory- and a compute-efficiency scale). Self-consistent specs — the
// embedded five — come back with both scales at 1.0.
func Calibrate(m *Machine) (*Calibration, error) { return micro.Calibrate(m) }

// Toolchain is one row of the paper's Table II.
type Toolchain = arch.Toolchain

// Toolchains returns the paper's Table II rows.
func Toolchains() []Toolchain { return arch.Toolchains() }

// Experiment is one reproducible table or figure of the paper.
type Experiment = core.Experiment

// Artifact is a completed experiment result.
type Artifact = core.Artifact

// Options tunes experiment execution: Quick for smoke runs, Trace to
// stream every simulated job's event timeline into a TraceSink, Profile
// to ask the sweep engine for an in-memory timeline, Counters to meter
// every simulated job with the virtual PMU. Observability options never
// change artifact contents.
type Options = core.Options

// OptionsKey is the comparable projection of Options onto the fields
// that affect artifact contents — the correct cache or digest key.
type OptionsKey = core.OptionsKey

// Engine selects the simulation execution substrate: the default
// goroutine-per-rank runtime or the single-threaded discrete-event
// engine built for very large rank counts. Both produce bit-identical
// results for every job (Options.Engine and every benchmark Config
// accept either).
type Engine = simmpi.Engine

// The available engines. ParseEngine maps the CLI spellings.
const (
	EngineGoroutine = simmpi.EngineGoroutine
	EngineEvent     = simmpi.EngineEvent
)

// ParseEngine resolves a CLI engine name ("goroutine", "event" or ""
// for the default) to an Engine.
func ParseEngine(s string) (Engine, error) { return simmpi.ParseEngine(s) }

// Model selects the compute-phase pricing model: the calibrated
// roofline default or the ECM memory-hierarchy model with explicit
// per-level transfer phases. Unlike Engine, the model changes simulated
// results — ECM artifacts are digest-distinct from roofline ones
// (Options.Model and every benchmark Config accept either).
type Model = perfmodel.Model

// The available pricing models. ParseModel maps the CLI spellings.
const (
	ModelRoofline = perfmodel.ModelRoofline
	ModelECM      = perfmodel.ModelECM
)

// ParseModel resolves a CLI model name ("roofline", "ecm" or "" for
// the default) to a Model.
func ParseModel(s string) (Model, error) { return perfmodel.ParseModel(s) }

// TraceSink receives the phase-annotated event stream of traced
// simulated jobs (see the trace support in every benchmark Config).
type TraceSink = simmpi.TraceSink

// TraceEvent is one entry of a traced job's timeline.
type TraceEvent = simmpi.Event

// Timeline is a merged sequence of trace events in deterministic
// (start time, rank) order.
type Timeline = simmpi.Timeline

// MemorySink is a TraceSink that buffers the stream for later analysis
// (Chrome export, communication matrices, critical paths — see
// internal/obs through the a64fxbench trace command).
type MemorySink = simmpi.MemorySink

// Virtual PMU: every benchmark Config and Options carries an optional
// *CounterConfig; a non-nil value makes each simulated rank meter named
// counters (flops by kernel class, cache-level traffic, attributed
// stall time, per-peer messages, collective time) and sample them in
// virtual time. Counting never changes simulated results.
type (
	// CounterConfig enables and tunes the virtual PMU (sampling period,
	// series length bound). The zero value means the defaults.
	CounterConfig = metrics.Config
	// JobCounters is a counted job's full PMU state: per-rank finals,
	// sampled series and per-peer traffic (simmpi.Report.Counters).
	JobCounters = metrics.JobCounters
	// CounterSnapshot is the regression sentinel's unit: a canonical,
	// diffable set of named metrics from one run (see the a64fxbench
	// counters and diff commands).
	CounterSnapshot = metrics.Snapshot
	// CounterDiffOptions sets the sentinel's per-kind tolerance rules.
	CounterDiffOptions = metrics.DiffOptions
	// CounterDiffResult reports a snapshot comparison; Failed gates.
	CounterDiffResult = metrics.DiffResult
)

// DiffCounterSnapshots compares two snapshots under the tolerance
// rules: Time metrics may grow by TimeTol, Rate metrics may drop by
// RateTol, Work metrics must match within WorkTol (default exactly).
func DiffCounterSnapshots(old, new *CounterSnapshot, opt CounterDiffOptions) *CounterDiffResult {
	return metrics.Diff(old, new, opt)
}

// LoadCounterSnapshot reads a snapshot written by Snapshot.WriteJSON
// (the a64fxbench counters -format=json output).
func LoadCounterSnapshot(path string) (*CounterSnapshot, error) {
	return metrics.LoadSnapshot(path)
}

// Instrumentation bundles the observability and network-pricing options
// (Trace, Congestion, Counters) every benchmark Config embeds — set the
// fields once instead of wiring three knobs per benchmark.
type Instrumentation = core.Instrumentation

// Request is the unified, serializable experiment-execution descriptor:
// what the CLI builds from flags and the serve daemon decodes from a
// JSON body. Normalize (or decode) before hashing; Digest is the
// content-addressed cache and singleflight key.
type Request = core.Request

// UnknownIDError reports a request id that resolves to neither a paper
// experiment nor an extension, carrying the full valid-id list.
type UnknownIDError = core.UnknownIDError

// DecodeRequest strictly decodes one JSON Request from r: unknown
// fields and trailing data are rejected, ids and engine validated, the
// result normalized.
func DecodeRequest(r io.Reader) (Request, error) { return core.DecodeRequest(r) }

// ParseRequest is DecodeRequest over raw bytes.
func ParseRequest(data []byte) (Request, error) { return core.ParseRequest(data) }

// ValidRequestIDs lists every runnable id: paper artifacts in paper
// order, then extensions sorted by id.
func ValidRequestIDs() []string { return core.ValidIDs() }

// RegisterExtension adds a custom ablation experiment to the extension
// registry at run time; it then runs through the CLI (`ext`, `run`) and
// the serve daemon like any built-in.
func RegisterExtension(e *Experiment) error { return core.RegisterExtension(e) }

// NewServer builds the sweep-as-a-service HTTP daemon (`a64fxbench
// serve`): POST /v1/run, /v1/sweep, /v1/trace, /v1/counters and
// /v1/links over Request bodies, GET /v1/machines, /v1/healthz and
// /metrics. Mount ServerHandler on any http server.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// Server is the daemon; Handler() is its mountable http.Handler.
type Server = serve.Server

// ServerConfig tunes the daemon's concurrency, queue depth and response
// cache.
type ServerConfig = serve.Config

// Experiments lists every table and figure of the paper's evaluation in
// order.
func Experiments() []*Experiment { return core.List() }

// GetExperiment looks an experiment up by ID, e.g. "table3" or "fig4".
func GetExperiment(id string) (*Experiment, error) { return core.Get(id) }

// Extensions lists the ablation experiments that go beyond the paper
// (interconnect swap, noise sensitivity, stencil code-generation study).
func Extensions() []*Experiment { return core.Extensions() }

// GetExtension looks an ablation experiment up by ID, e.g. "ext-network".
func GetExtension(id string) (*Experiment, error) { return core.GetExtension(id) }

// HPCG benchmark (Tables III and IV).
type (
	// HPCGConfig configures an HPCG run.
	HPCGConfig = hpcg.Config
	// HPCGResult is the HPCG rating.
	HPCGResult = hpcg.Result
)

// RunHPCG executes the metered HPCG benchmark.
func RunHPCG(cfg HPCGConfig) (HPCGResult, error) { return hpcg.Run(cfg) }

// Minikab benchmark (Table V, Figures 1 and 2).
type (
	// MinikabConfig configures a minikab run.
	MinikabConfig = minikab.Config
	// MinikabResult is the minikab outcome.
	MinikabResult = minikab.Result
)

// RunMinikab executes the metered minikab CG solve.
func RunMinikab(cfg MinikabConfig) (MinikabResult, error) { return minikab.Run(cfg) }

// MinikabMemoryPerNode estimates the per-node memory a minikab
// configuration needs (matrix share, solver vectors, replicated setup).
func MinikabMemoryPerNode(cfg MinikabConfig) Bytes { return minikab.MemoryPerNode(cfg) }

// MinikabFitsMemory reports whether a configuration fits node memory —
// the constraint behind the paper's Figure 1.
func MinikabFitsMemory(cfg MinikabConfig) bool { return minikab.FitsMemory(cfg) }

// Nekbone benchmark (Table VI, Figure 3, Table VII).
type (
	// NekboneConfig configures a Nekbone run.
	NekboneConfig = nekbone.Config
	// NekboneResult is the Nekbone outcome.
	NekboneResult = nekbone.Result
)

// RunNekbone executes the metered Nekbone weak-scaling benchmark.
func RunNekbone(cfg NekboneConfig) (NekboneResult, error) { return nekbone.Run(cfg) }

// COSA benchmark (Table VIII, Figure 4).
type (
	// COSAConfig configures a COSA run.
	COSAConfig = cosa.Config
	// COSAResult is the COSA outcome.
	COSAResult = cosa.Result
)

// RunCOSA executes the metered COSA strong-scaling benchmark.
func RunCOSA(cfg COSAConfig) (COSAResult, error) { return cosa.Run(cfg) }

// CASTEP benchmark (Table IX, Figure 5).
type (
	// CASTEPConfig configures a CASTEP run.
	CASTEPConfig = castep.Config
	// CASTEPResult is the CASTEP outcome.
	CASTEPResult = castep.Result
)

// RunCASTEP executes the metered CASTEP TiN benchmark.
func RunCASTEP(cfg CASTEPConfig) (CASTEPResult, error) { return castep.Run(cfg) }

// OpenSBLI benchmark (Table X).
type (
	// OpenSBLIConfig configures an OpenSBLI run.
	OpenSBLIConfig = opensbli.Config
	// OpenSBLIResult is the OpenSBLI outcome.
	OpenSBLIResult = opensbli.Result
)

// RunOpenSBLI executes the metered OpenSBLI Taylor-Green benchmark.
func RunOpenSBLI(cfg OpenSBLIConfig) (OpenSBLIResult, error) { return opensbli.Run(cfg) }
