package a64fxbench_test

import (
	"strings"
	"testing"

	"a64fxbench"
)

func TestSystemsExposed(t *testing.T) {
	systems := a64fxbench.Systems()
	if len(systems) < 5 {
		t.Fatalf("expected ≥5 systems, got %d", len(systems))
	}
	ids := a64fxbench.SystemIDs()
	if len(ids) != 5 || ids[0] != a64fxbench.A64FX {
		t.Errorf("SystemIDs = %v", ids)
	}
	for _, id := range ids {
		s, err := a64fxbench.GetSystem(id)
		if err != nil || s.ID != id {
			t.Errorf("GetSystem(%s): %v", id, err)
		}
	}
	if _, err := a64fxbench.GetSystem("no-such-machine"); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestExperimentsExposed(t *testing.T) {
	exps := a64fxbench.Experiments()
	if len(exps) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(exps))
	}
	if _, err := a64fxbench.GetExperiment("table3"); err != nil {
		t.Error(err)
	}
	if _, err := a64fxbench.GetExperiment("nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestToolchainsExposed(t *testing.T) {
	if len(a64fxbench.Toolchains()) < 20 {
		t.Error("Table II rows missing")
	}
}

func TestDirectBenchmarkRuns(t *testing.T) {
	sys, err := a64fxbench.GetSystem(a64fxbench.A64FX)
	if err != nil {
		t.Fatal(err)
	}
	h, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: sys, Nodes: 1, Iterations: 3})
	if err != nil || h.GFLOPs <= 0 {
		t.Errorf("RunHPCG: %v %v", h.GFLOPs, err)
	}
	n, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: sys, Nodes: 1, Iterations: 3})
	if err != nil || n.GFLOPs <= 0 {
		t.Errorf("RunNekbone: %v %v", n.GFLOPs, err)
	}
	m, err := a64fxbench.RunMinikab(a64fxbench.MinikabConfig{System: sys, Nodes: 1, RanksPerNode: 1, Iterations: 5})
	if err != nil || m.Seconds <= 0 {
		t.Errorf("RunMinikab: %v %v", m.Seconds, err)
	}
	c, err := a64fxbench.RunCOSA(a64fxbench.COSAConfig{System: sys, Nodes: 2})
	if err != nil || c.Seconds <= 0 {
		t.Errorf("RunCOSA: %v %v", c.Seconds, err)
	}
	ca, err := a64fxbench.RunCASTEP(a64fxbench.CASTEPConfig{System: sys, Cycles: 1})
	if err != nil || ca.SCFCyclesPerSecond <= 0 {
		t.Errorf("RunCASTEP: %v %v", ca.SCFCyclesPerSecond, err)
	}
	o, err := a64fxbench.RunOpenSBLI(a64fxbench.OpenSBLIConfig{System: sys, Nodes: 1})
	if err != nil || o.Seconds <= 0 {
		t.Errorf("RunOpenSBLI: %v %v", o.Seconds, err)
	}
}

func TestMinikabMemoryHelpers(t *testing.T) {
	sys, _ := a64fxbench.GetSystem(a64fxbench.A64FX)
	full := a64fxbench.MinikabConfig{System: sys, Nodes: 2, RanksPerNode: 48}
	if a64fxbench.MinikabFitsMemory(full) {
		t.Error("fully-populated plain MPI should not fit 2 A64FX nodes")
	}
	if a64fxbench.MinikabMemoryPerNode(full) <= 0 {
		t.Error("memory estimate must be positive")
	}
}

func TestDeriveSystem(t *testing.T) {
	s, err := a64fxbench.DeriveSystem(a64fxbench.Fulhame, "Fulhame-2x", func(s *a64fxbench.System) {
		for i := range s.Node.Domains {
			s.Node.Domains[i].PeakBandwidth *= 2
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := a64fxbench.GetSystem(a64fxbench.Fulhame)
	if s.Node.PeakBandwidth() != 2*base.Node.PeakBandwidth() {
		t.Error("mutation did not apply")
	}
	// The base must be unchanged (deep-copied domains).
	if base.Node.PeakBandwidth() >= s.Node.PeakBandwidth() {
		t.Error("base system was mutated")
	}
	// Duplicate IDs rejected.
	if _, err := a64fxbench.DeriveSystem(a64fxbench.Fulhame, "Fulhame-2x", nil); err == nil {
		t.Error("duplicate derived ID should fail")
	}
	// Derived system runs benchmarks with inherited calibration.
	res, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: s, Nodes: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: base, Nodes: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFLOPs <= baseRes.GFLOPs {
		t.Errorf("doubled bandwidth should speed up HPCG: %v vs %v", res.GFLOPs, baseRes.GFLOPs)
	}
}

func TestQuickExperimentEndToEnd(t *testing.T) {
	exp, err := a64fxbench.GetExperiment("table8")
	if err != nil {
		t.Fatal(err)
	}
	art, err := exp.Run(a64fxbench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := art.RenderComparison()
	if !strings.Contains(out, "A64FX") {
		t.Errorf("render missing systems: %s", out)
	}
}
